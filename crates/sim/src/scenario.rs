//! Seeded scenario generation: topology, workload, and fault schedule.
//!
//! Everything a scenario contains is a pure function of one `u64` seed.
//! The seed is split into three independent child streams with
//! [`DetRng::fork`] — `"topology"`, `"workload"`, `"inject"` — so that
//! masking injections away (the shrinker's move) regenerates the *same*
//! network and the *same* packets with a smaller fault schedule, instead
//! of perturbing every downstream draw.
//!
//! The generated network routes every packet towards a destination host
//! `dst` through per-switch primary rules (priority 5), with a backup
//! route towards a second host `alt` on every switch (priority 1).
//! Faults act on the rule layer: withdrawing a primary rule diverts the
//! affected packets onto the backup path, so a fault produces a
//! *misdelivery* — the same observable failure class as the paper's SDN
//! scenarios — rather than a crash. The good execution is the fault-free
//! baseline; the bad execution is the baseline with the applied
//! injections lowered into its event log.

use std::fmt;

use dp_replay::Execution;
use dp_sdn::{cfg_entry, pkt_in, sdn_program, Topology};
use dp_types::prefix::{cidr, ip};
use dp_types::{DetRng, LogicalTime, NodeId, Tuple};

/// Base time at which the topology and configuration are installed.
pub const T_CONFIG: LogicalTime = 10;
/// Spacing between probe packets; injections land halfway between them.
pub const T_PACKET: LogicalTime = 1_000;
/// Protocol number used for probe packets.
pub const PROTO_TCP: i64 = 6;
/// Probe packet length.
pub const PROBE_LEN: i64 = 512;
/// Rule-id base of per-switch primary rules (towards `dst`).
const RID_PRIMARY: i64 = 100;
/// Rule-id base of per-switch backup rules (towards `alt`).
const RID_BACKUP: i64 = 200;
/// Rule-id base of racing controller updates.
const RID_RACE: i64 = 300;
/// Priority of the racing update (wins over the primary rule).
const PRIO_RACE: i64 = 7;
/// Priority of the primary route.
const PRIO_PRIMARY: i64 = 5;
/// Priority of the backup route.
const PRIO_BACKUP: i64 = 1;

/// One injected fault (or perturbation) in a scenario's schedule.
///
/// Switches are identified by index into the generated topology's
/// `S0..S{n-1}` naming; packets by index into [`SimScenario::packets`].
/// All times are logical and land on half-period boundaries (`j*1000 +
/// 500`), strictly between packet injections, so the schedule is always
/// quiescent at an injection instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    /// The primary rule of switch `sw` is withdrawn at `at` and stays
    /// down: later packets through `sw` take the backup route.
    RuleWithdraw {
        /// Target switch index.
        sw: usize,
        /// Withdrawal time.
        at: LogicalTime,
    },
    /// The primary rule of `sw` flaps: down at `down_at`, reinstalled at
    /// `up_at`. Packets in the gap divert; later packets recover.
    RuleRestore {
        /// Target switch index.
        sw: usize,
        /// Withdrawal time.
        down_at: LogicalTime,
        /// Reinstallation time.
        up_at: LogicalTime,
    },
    /// The primary rule of `sw` is installed late — at `until` instead of
    /// [`T_CONFIG`] — modelling a delayed control-plane message. Packets
    /// arriving before `until` see only the backup rule.
    DelayedInstall {
        /// Target switch index.
        sw: usize,
        /// Actual installation time.
        until: LogicalTime,
    },
    /// Two same-time configuration installs arrive in the opposite order
    /// (positions `a` and `b` of the baseline install sequence are
    /// swapped). A reordered control plane must be observably benign:
    /// the installs commute, so deliveries cannot change.
    ReorderInstalls {
        /// First install position.
        a: usize,
        /// Second install position.
        b: usize,
    },
    /// Packet `packet` is delivered to its ingress switch a second time
    /// at `at`. Base-tuple insertion is idempotent, so a duplicate must
    /// be *completely* invisible — the battery checks the provenance
    /// digest is unchanged by the duplicate. The duplicate gets its own
    /// sub-slot (`due + 250`) no other generated event uses: the engine
    /// clock stamps same-instant arrivals distinctly, so even a no-op
    /// sharing an instant with a real event would shift later stamps.
    DupPacket {
        /// Index into the workload.
        packet: usize,
        /// Arrival time of the duplicate.
        at: LogicalTime,
    },
    /// The whole engine is snapshotted and restored mid-schedule at
    /// `cut` (a quiescent boundary) — the paper's node-restart fault.
    /// Restart transparency requires the provenance stream to be
    /// bit-identical to an uninterrupted run, at any restore shard
    /// count.
    NodeRestart {
        /// Quiescent boundary at which the restart happens.
        cut: LogicalTime,
    },
    /// Two controller apps race to install the same rule id on `sw` at
    /// `at`: one writes a route towards `dst`, the other towards `alt`,
    /// and last-writer-wins. The good execution sees the `dst` write
    /// land second; the bad execution sees the orders flipped — which is
    /// exactly the good/bad pair DiffProv diagnoses.
    RaceInstall {
        /// Target switch index.
        sw: usize,
        /// Arrival time of both writes.
        at: LogicalTime,
    },
}

impl Injection {
    /// Stable short name of the injection kind (battery statistics,
    /// corpus notes).
    pub fn kind(&self) -> &'static str {
        match self {
            Injection::RuleWithdraw { .. } => "rule-withdraw",
            Injection::RuleRestore { .. } => "rule-restore",
            Injection::DelayedInstall { .. } => "delayed-install",
            Injection::ReorderInstalls { .. } => "reorder-installs",
            Injection::DupPacket { .. } => "dup-packet",
            Injection::NodeRestart { .. } => "node-restart",
            Injection::RaceInstall { .. } => "race-install",
        }
    }
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Injection::RuleWithdraw { sw, at } => write!(f, "withdraw primary of S{sw} at {at}"),
            Injection::RuleRestore { sw, down_at, up_at } => {
                write!(f, "flap primary of S{sw}: down {down_at}, up {up_at}")
            }
            Injection::DelayedInstall { sw, until } => {
                write!(f, "delay primary install of S{sw} until {until}")
            }
            Injection::ReorderInstalls { a, b } => write!(f, "swap installs #{a} and #{b}"),
            Injection::DupPacket { packet, at } => write!(f, "duplicate packet #{packet} at {at}"),
            Injection::NodeRestart { cut } => write!(f, "snapshot/restore restart at {cut}"),
            Injection::RaceInstall { sw, at } => {
                write!(f, "racing rule installs on S{sw} at {at}")
            }
        }
    }
}

/// One probe packet of the generated workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Packet (flow) id, unique per scenario.
    pub pid: i64,
    /// Source address (arbitrary; all rules match `0.0.0.0/0`).
    pub src: u32,
    /// Ingress switch index.
    pub ingress: usize,
    /// Injection time.
    pub due: LogicalTime,
}

/// A fully generated fault-injection scenario: good/bad executions plus
/// everything the battery and the shrinker need to reason about them.
pub struct SimScenario {
    /// The seed everything was derived from.
    pub seed: u64,
    /// The full drawn injection schedule (before masking).
    pub injections: Vec<Injection>,
    /// Indexes into `injections` that were actually lowered. A masked
    /// index is absent; so is an index whose target switch was already
    /// claimed by an earlier rule-layer injection (first-writer-wins
    /// keeps the lowering coherent).
    pub applied: Vec<usize>,
    /// The fault-free execution.
    pub good: Execution,
    /// The execution with the applied injections lowered into its log.
    pub bad: Execution,
    /// Restart boundaries from applied [`Injection::NodeRestart`]s,
    /// sorted and deduplicated.
    pub restart_cuts: Vec<LogicalTime>,
    /// The workload.
    pub packets: Vec<Packet>,
    /// The generated topology (hosts `dst` and `alt` attached).
    pub topology: Topology,
    /// Switch index hosting `dst`.
    pub dst_switch: usize,
    /// Switch index hosting `alt`.
    pub alt_switch: usize,
}

/// Destination address every probe packet targets.
pub fn probe_dst() -> u32 {
    ip("10.0.0.80")
}

/// Generates the scenario for `seed` with the full injection schedule
/// applied.
pub fn generate(seed: u64) -> SimScenario {
    generate_masked(seed, None)
}

/// Generates the scenario for `seed`, lowering only the injections whose
/// indexes appear in `keep` (all of them when `None`). Topology, workload,
/// and the drawn schedule are identical for every mask — the property the
/// shrinker rests on.
pub fn generate_masked(seed: u64, keep: Option<&[usize]>) -> SimScenario {
    let root = DetRng::seed_from_u64(seed);

    // --- Topology stream -------------------------------------------------
    let mut topo_rng = root.fork("topology");
    let n = topo_rng.gen_range_usize(4, 9);
    let extra = topo_rng.gen_range_usize(0, 4);
    let mut topo = Topology::random(&mut topo_rng, "ctl", n, extra);
    let dst_switch = topo_rng.gen_range_usize(0, n);
    let alt_switch = (dst_switch + 1 + topo_rng.gen_range_usize(0, n - 1)) % n;
    topo.host(&sw_name(dst_switch), "dst");
    topo.host(&sw_name(alt_switch), "alt");

    // --- Workload stream -------------------------------------------------
    let mut work_rng = root.fork("workload");
    let k = work_rng.gen_range_usize(2, 6);
    let packets: Vec<Packet> = (0..k)
        .map(|i| Packet {
            pid: i as i64 + 1,
            src: work_rng.next_u32(),
            ingress: work_rng.gen_range_usize(0, n),
            due: (i as LogicalTime + 1) * T_PACKET,
        })
        .collect();

    // --- Injection stream ------------------------------------------------
    let mut inj_rng = root.fork("inject");
    let m = inj_rng.gen_range_usize(1, 7);
    // A half-period boundary: strictly between packets (or before the
    // first / after the last), never colliding with a packet or config
    // event, so the engine is quiescent there.
    let boundary = |rng: &mut DetRng| -> LogicalTime {
        rng.gen_range_u64(0, k as u64 + 1) * T_PACKET + T_PACKET / 2
    };
    let injections: Vec<Injection> = (0..m)
        .map(|_| match inj_rng.gen_range_usize(0, 7) {
            0 => Injection::RuleWithdraw {
                sw: inj_rng.gen_range_usize(0, n),
                at: boundary(&mut inj_rng),
            },
            1 => {
                let sw = inj_rng.gen_range_usize(0, n);
                let a = boundary(&mut inj_rng);
                let b = boundary(&mut inj_rng);
                let (down_at, up_at) = if a < b { (a, b) } else { (b, a + T_PACKET) };
                Injection::RuleRestore { sw, down_at, up_at }
            }
            2 => Injection::DelayedInstall {
                sw: inj_rng.gen_range_usize(0, n),
                until: boundary(&mut inj_rng),
            },
            3 => {
                // Two positions in the 2n-entry baseline install list.
                let a = inj_rng.gen_range_usize(0, 2 * n);
                let b = inj_rng.gen_range_usize(0, 2 * n);
                Injection::ReorderInstalls { a, b }
            }
            4 => {
                let packet = inj_rng.gen_range_usize(0, k);
                let at = packets[packet].due + T_PACKET / 4;
                Injection::DupPacket { packet, at }
            }
            5 => Injection::NodeRestart {
                cut: boundary(&mut inj_rng),
            },
            _ => Injection::RaceInstall {
                sw: inj_rng.gen_range_usize(0, n),
                at: boundary(&mut inj_rng),
            },
        })
        .collect();

    // --- Lowering ---------------------------------------------------------
    let program = sdn_program("ctl").expect("SDN program builds");
    let any = cidr("0.0.0.0/0");
    let dst = probe_dst();

    // Baseline install list: for each switch, the primary (towards `dst`)
    // then the backup (towards `alt`), all due at T_CONFIG. Entries carry
    // their own due time so a DelayedInstall only moves one of them.
    let route_port = |sw: usize, host: &str| -> i64 {
        let name = sw_name(sw);
        let hop = topo
            .next_hop(&name, host)
            .expect("random topology is connected");
        topo.port_towards(&name, &hop)
    };
    let mut baseline: Vec<(LogicalTime, Tuple)> = Vec::with_capacity(2 * n);
    for sw in 0..n {
        baseline.push((
            T_CONFIG,
            cfg_entry(
                RID_PRIMARY + sw as i64,
                &sw_name(sw),
                PRIO_PRIMARY,
                any,
                any,
                route_port(sw, "dst"),
            ),
        ));
        baseline.push((
            T_CONFIG,
            cfg_entry(
                RID_BACKUP + sw as i64,
                &sw_name(sw),
                PRIO_BACKUP,
                any,
                any,
                route_port(sw, "alt"),
            ),
        ));
    }

    let applied_idx: Vec<usize> = (0..injections.len())
        .filter(|i| keep.is_none_or(|k| k.contains(i)))
        .collect();

    // First-writer-wins per switch for rule-layer injections, so the
    // lowered schedule never deletes an absent rule or double-installs.
    let mut claimed = std::collections::BTreeSet::new();
    let mut applied = Vec::new();
    let mut bad_baseline = baseline.clone();
    let mut restart_cuts: Vec<LogicalTime> = Vec::new();
    // Extra bad-log events beyond the install list: (due, tuple, delete).
    let mut bad_extra: Vec<(LogicalTime, NodeId, Tuple, bool)> = Vec::new();
    let mut good_extra: Vec<(LogicalTime, NodeId, Tuple, bool)> = Vec::new();
    let ctl = NodeId::new("ctl");
    for &i in &applied_idx {
        match &injections[i] {
            Injection::RuleWithdraw { sw, at } => {
                if !claimed.insert(*sw) {
                    continue;
                }
                let primary = bad_baseline[2 * sw].1.clone();
                bad_extra.push((*at, ctl.clone(), primary, true));
            }
            Injection::RuleRestore { sw, down_at, up_at } => {
                if !claimed.insert(*sw) {
                    continue;
                }
                let primary = bad_baseline[2 * sw].1.clone();
                bad_extra.push((*down_at, ctl.clone(), primary.clone(), true));
                bad_extra.push((*up_at, ctl.clone(), primary, false));
            }
            Injection::DelayedInstall { sw, until } => {
                if !claimed.insert(*sw) {
                    continue;
                }
                bad_baseline[2 * sw].0 = *until;
            }
            Injection::ReorderInstalls { a, b } => {
                bad_baseline.swap(*a, *b);
            }
            Injection::DupPacket { packet, at } => {
                let p = &packets[*packet];
                bad_extra.push((
                    *at,
                    NodeId::new(sw_name(p.ingress)),
                    pkt_in(p.pid, p.src, dst, PROTO_TCP, PROBE_LEN),
                    false,
                ));
            }
            Injection::NodeRestart { cut } => {
                restart_cuts.push(*cut);
            }
            Injection::RaceInstall { sw, at } => {
                if !claimed.insert(*sw) {
                    continue;
                }
                // Two controller apps write the same rule id; the store is
                // last-writer-wins, so the loser's entry is visible only
                // transiently. Good sees the dst-route land second; bad
                // sees the orders flipped.
                let to_dst = cfg_entry(
                    RID_RACE + *sw as i64,
                    &sw_name(*sw),
                    PRIO_RACE,
                    any,
                    any,
                    route_port(*sw, "dst"),
                );
                let to_alt = cfg_entry(
                    RID_RACE + *sw as i64,
                    &sw_name(*sw),
                    PRIO_RACE,
                    any,
                    any,
                    route_port(*sw, "alt"),
                );
                for (log, first, second) in [
                    (&mut good_extra, to_alt.clone(), to_dst.clone()),
                    (&mut bad_extra, to_dst, to_alt),
                ] {
                    log.push((*at, ctl.clone(), first.clone(), false));
                    log.push((*at, ctl.clone(), first, true));
                    log.push((*at, ctl.clone(), second, false));
                }
            }
        }
        applied.push(i);
    }
    restart_cuts.sort_unstable();
    restart_cuts.dedup();

    // --- Logs -------------------------------------------------------------
    let build = |install: &[(LogicalTime, Tuple)],
                 extra: &[(LogicalTime, NodeId, Tuple, bool)]|
     -> Execution {
        let mut exec = Execution::new(std::sync::Arc::clone(&program));
        topo.emit(&mut exec.log, T_CONFIG);
        for (due, entry) in install {
            exec.log.insert(*due, ctl.clone(), entry.clone());
        }
        for p in &packets {
            exec.log.insert(
                p.due,
                sw_name(p.ingress).as_str(),
                pkt_in(p.pid, p.src, dst, PROTO_TCP, PROBE_LEN),
            );
        }
        for (due, node, tuple, delete) in extra {
            if *delete {
                exec.log.delete(*due, node.clone(), tuple.clone());
            } else {
                exec.log.insert(*due, node.clone(), tuple.clone());
            }
        }
        exec
    };
    let good = build(&baseline, &good_extra);
    let bad = build(&bad_baseline, &bad_extra);

    SimScenario {
        seed,
        injections,
        applied,
        good,
        bad,
        restart_cuts,
        packets,
        topology: topo,
        dst_switch,
        alt_switch,
    }
}

/// The canonical switch name for index `i` (matches
/// [`Topology::random`]'s naming).
pub fn sw_name(i: usize) -> String {
    format!("S{i}")
}

impl SimScenario {
    /// The injection kinds actually applied, in schedule order.
    pub fn applied_kinds(&self) -> Vec<&'static str> {
        self.applied
            .iter()
            .map(|&i| self.injections[i].kind())
            .collect()
    }
}
