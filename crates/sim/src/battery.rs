//! The invariant battery: everything a generated scenario must satisfy.
//!
//! Each scenario is pushed through the whole stack — engine, provenance
//! recorder, replay, DiffProv — and checked against invariants that hold
//! for *every* seed, not just the hand-built repro scenarios:
//!
//! 1. **Digest determinism** — replaying an execution twice, and at
//!    1/2/4 shards, 2 worker threads, tuple-at-a-time firing, the
//!    trie-disabled path, and the naive join path, folds to one and the
//!    same provenance stream digest.
//! 2. **Graph well-formedness** — the recorded temporal provenance graph
//!    obeys the vertex grammar and episode ordering
//!    ([`dp_provenance::well_formedness_violations`]).
//! 3. **Baseline sanity** — the fault-free execution delivers every probe
//!    packet at the `dst` host, and nowhere else.
//! 4. **Verdict invariance** — when the injections produce a diagnosable
//!    misdelivery, DiffProv's verdict (success/failure, the change set,
//!    round count, tree sizes) is identical under all six engine
//!    configurations and under sharded replay.
//! 5. **Restart transparency** — a scenario with a `NodeRestart` replays
//!    to a bit-identical stream when the engine is snapshotted and
//!    restored at the cut, at any restore shard count.
//! 6. **Duplicate invisibility** — a duplicated packet is absorbed by
//!    idempotent base insertion: dropping the `DupPacket` injections from
//!    the schedule must not change the bad execution's digest.
//! 7. **Reconstruction equivalence** — the verdict-invariance leg also
//!    runs the diagnosis with the compact annotation backend pinned
//!    (`ProvBackend::Annot`), where every proof tree is *reconstructed*
//!    by re-running rule bodies instead of extracted from a recorded
//!    graph; the verdict must be identical to the graph backend's.
//! 8. **Durable recovery** — the bad execution spilled to an on-disk
//!    layered store, "killed", and recovered (newest durable checkpoint
//!    restored + on-disk tail replayed) folds to exactly the crash-free
//!    reference digest; and a checkpoint-free recovery through the layer
//!    stack alone reproduces the uncut in-memory stream digest.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use diffprov_core::{DiffProv, QueryEvent};
use dp_ndlog::testsupport::EngineConfig;
use dp_ndlog::{Engine, ProvEvent, VecSink};
use dp_provenance::well_formedness_violations;
use dp_replay::{BaseOp, DurableStore, EventLog, Execution, ProvBackend};
use dp_sdn::deliver_at;
use dp_types::{LogicalTime, Result};

use crate::scenario::{
    generate_masked, Injection, SimScenario, PROBE_LEN, PROTO_TCP,
};

/// One invariant violation found by the battery.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable invariant name (also recorded in corpus files).
    pub invariant: &'static str,
    /// Human-readable description of what diverged.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// What the battery observed about one scenario.
#[derive(Clone, Debug, Default)]
pub struct BatteryReport {
    /// All violations found (empty means the scenario passed).
    pub violations: Vec<Violation>,
    /// True when good and bad executions delivered differently.
    pub divergent: bool,
    /// True when the divergence was diagnosable (a misdelivery with a
    /// delivery on both sides) and DiffProv ran.
    pub diagnosed: bool,
    /// True when the diagnosis aligned the trees.
    pub diagnosis_succeeded: bool,
    /// Injection kinds that were actually applied.
    pub kinds: Vec<&'static str>,
}

impl BatteryReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full battery against one scenario.
pub fn check_scenario(sc: &SimScenario) -> BatteryReport {
    let mut report = BatteryReport {
        kinds: sc.applied_kinds(),
        ..BatteryReport::default()
    };
    let fail = |invariant: &'static str, detail: String, out: &mut BatteryReport| {
        out.violations.push(Violation { invariant, detail });
    };

    // --- 1. Digest determinism -------------------------------------------
    let digests = |exec: &Execution| -> Result<Vec<(String, (u64, u64))>> {
        let mut out = vec![
            ("base".to_string(), exec.stream_digest()?),
            ("rerun".to_string(), exec.stream_digest()?),
        ];
        for shards in [2usize, 4] {
            let mut e = exec.clone();
            e.shards = shards;
            out.push((format!("shards-{shards}"), e.stream_digest()?));
        }
        let mut threads2 = exec.clone();
        threads2.threads = 2;
        out.push(("threads-2".to_string(), threads2.stream_digest()?));
        let mut unbatched = exec.clone();
        unbatched.unbatched = true;
        out.push(("unbatched".to_string(), unbatched.stream_digest()?));
        let mut no_trie = exec.clone();
        no_trie.no_trie = true;
        out.push(("no-trie".to_string(), no_trie.stream_digest()?));
        let mut naive = exec.clone();
        naive.naive_join = true;
        out.push(("naive-join".to_string(), naive.stream_digest()?));
        Ok(out)
    };
    let mut side_digest = [0u64; 2];
    for (side_idx, (side, exec)) in [("good", &sc.good), ("bad", &sc.bad)].iter().enumerate() {
        match digests(exec) {
            Ok(all) => {
                let (ref base_label, base) = all[0];
                debug_assert_eq!(base_label, "base");
                side_digest[side_idx] = base.0;
                for (label, got) in &all[1..] {
                    if *got != base {
                        fail(
                            "digest-determinism",
                            format!(
                                "seed {}: {side} stream digest diverges under {label}: \
                                 base {base:?}, got {got:?}",
                                sc.seed
                            ),
                            &mut report,
                        );
                    }
                }
            }
            Err(e) => fail(
                "digest-determinism",
                format!("seed {}: {side} replay failed: {e}", sc.seed),
                &mut report,
            ),
        }
    }

    // --- 2 & 3. Graph well-formedness and deliveries ---------------------
    type Deliveries = BTreeMap<i64, BTreeSet<String>>;
    let replayed = |exec: &Execution| -> Result<(Deliveries, Vec<String>)> {
        // Whole-graph access (vertex walk + well-formedness) needs the
        // explicit graph, regardless of any ambient `DP_PROV=annot`.
        let mut exec = exec.clone();
        exec.provenance_backend = ProvBackend::Graph;
        let r = exec.replay()?;
        let graph_violations = well_formedness_violations(r.graph());
        let mut deliv: BTreeMap<i64, BTreeSet<String>> = BTreeMap::new();
        for v in r.graph().vertices() {
            if matches!(v.kind, dp_provenance::VertexKind::Appear)
                && v.tuple.table.as_str() == "deliver"
            {
                if let Ok(pid) = v.tuple.args[0].as_int() {
                    deliv.entry(pid).or_default().insert(v.node.to_string());
                }
            }
        }
        Ok((deliv, graph_violations))
    };
    let mut sides = Vec::new();
    for (side, exec) in [("good", &sc.good), ("bad", &sc.bad)] {
        match replayed(exec) {
            Ok((deliv, graph_violations)) => {
                for gv in graph_violations {
                    fail(
                        "graph-well-formed",
                        format!("seed {}: {side} graph: {gv}", sc.seed),
                        &mut report,
                    );
                }
                sides.push(deliv);
            }
            Err(e) => {
                fail(
                    "graph-well-formed",
                    format!("seed {}: {side} replay failed: {e}", sc.seed),
                    &mut report,
                );
                sides.push(BTreeMap::new());
            }
        }
    }
    let (good_deliv, bad_deliv) = (sides[0].clone(), sides[1].clone());
    for p in &sc.packets {
        let hosts = good_deliv.get(&p.pid).cloned().unwrap_or_default();
        if hosts.iter().map(String::as_str).collect::<Vec<_>>() != ["dst"] {
            fail(
                "good-baseline",
                format!(
                    "seed {}: packet {} delivered at {hosts:?} in the fault-free \
                     execution, expected exactly [\"dst\"]",
                    sc.seed, p.pid
                ),
                &mut report,
            );
        }
    }

    // --- 4. Verdict invariance -------------------------------------------
    let divergent_pid = sc.packets.iter().find_map(|p| {
        let good = good_deliv.get(&p.pid).cloned().unwrap_or_default();
        let bad = bad_deliv.get(&p.pid).cloned().unwrap_or_default();
        (good != bad).then_some((p, good, bad))
    });
    report.divergent = divergent_pid.is_some();
    if let Some((packet, good_hosts, bad_hosts)) = divergent_pid {
        if let (Some(good_host), Some(bad_host)) =
            (good_hosts.iter().next(), bad_hosts.iter().next())
        {
            report.diagnosed = true;
            let good_event = QueryEvent::new(
                deliver_at(
                    good_host,
                    packet.pid,
                    packet.src,
                    crate::scenario::probe_dst(),
                    PROTO_TCP,
                    PROBE_LEN,
                ),
                u64::MAX,
            );
            let bad_event = QueryEvent::new(
                deliver_at(
                    bad_host,
                    packet.pid,
                    packet.src,
                    crate::scenario::probe_dst(),
                    PROTO_TCP,
                    PROBE_LEN,
                ),
                u64::MAX,
            );
            let mut reference: Option<(String, Vec<String>)> = None;
            let mut configs: Vec<(String, Execution, Execution)> = EngineConfig::matrix()
                .iter()
                .map(|cfg| {
                    let adapt = |exec: &Execution| {
                        let mut e = exec.clone();
                        e.naive_join = cfg.naive_join.unwrap_or(e.naive_join);
                        e.unbatched = cfg.unbatched.unwrap_or(e.unbatched);
                        e.no_trie = cfg.no_trie.unwrap_or(e.no_trie);
                        e.threads = cfg.threads.unwrap_or(e.threads);
                        e
                    };
                    (cfg.label.to_string(), adapt(&sc.good), adapt(&sc.bad))
                })
                .collect();
            let sharded = |exec: &Execution| {
                let mut e = exec.clone();
                e.unbatched = false;
                e.threads = 1;
                e.shards = 2;
                e
            };
            configs.push(("shards-2".to_string(), sharded(&sc.good), sharded(&sc.bad)));
            // Reconstruction equivalence: pin the annotation backend, so
            // every tree the diagnosis consumes is reconstructed on demand
            // instead of extracted from a recorded graph. The verdict must
            // not move (and the graph-backend rows above double as the
            // reference whenever `DP_PROV=annot` is ambient).
            let pinned = |exec: &Execution, backend: ProvBackend| {
                let mut e = exec.clone();
                e.unbatched = false;
                e.threads = 1;
                e.provenance_backend = backend;
                e
            };
            for (label, backend) in [
                ("graph-backend", ProvBackend::Graph),
                ("annot-reconstruction", ProvBackend::Annot),
            ] {
                configs.push((
                    label.to_string(),
                    pinned(&sc.good, backend),
                    pinned(&sc.bad, backend),
                ));
            }
            for (label, good, bad) in &configs {
                match DiffProv::default().diagnose(good, &good_event, bad, &bad_event) {
                    Ok(r) => {
                        report.diagnosis_succeeded |= r.succeeded();
                        let verdict = render_verdict(&r);
                        match &reference {
                            None => reference = Some((label.clone(), verdict)),
                            Some((ref_label, ref_verdict)) => {
                                if ref_verdict != &verdict {
                                    fail(
                                        "verdict-invariant",
                                        format!(
                                            "seed {}: diagnosis verdict diverges between \
                                             {ref_label} and {label}:\n--- {ref_label}\n{}\n--- \
                                             {label}\n{}",
                                            sc.seed,
                                            ref_verdict.join("\n"),
                                            verdict.join("\n")
                                        ),
                                        &mut report,
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => fail(
                        "verdict-invariant",
                        format!("seed {}: diagnosis errored under {label}: {e}", sc.seed),
                        &mut report,
                    ),
                }
            }
        }
    }

    // --- 5. Restart transparency -----------------------------------------
    if !sc.restart_cuts.is_empty() {
        match restart_leg(&sc.bad, &sc.restart_cuts) {
            Ok(None) => {}
            Ok(Some(detail)) => fail(
                "restart-transparency",
                format!("seed {}: {detail}", sc.seed),
                &mut report,
            ),
            Err(e) => fail(
                "restart-transparency",
                format!("seed {}: restart replay failed: {e}", sc.seed),
                &mut report,
            ),
        }
    }

    // --- 6. Duplicate invisibility ---------------------------------------
    let dup_free: Vec<usize> = sc
        .applied
        .iter()
        .copied()
        .filter(|&i| !matches!(sc.injections[i], Injection::DupPacket { .. }))
        .collect();
    if dup_free.len() != sc.applied.len() {
        let undup = generate_masked(sc.seed, Some(&dup_free));
        match undup.bad.stream_digest() {
            Ok((digest, _)) => {
                if digest != side_digest[1] {
                    fail(
                        "dup-invisible",
                        format!(
                            "seed {}: dropping the duplicate packets changed the bad \
                             digest ({} -> {digest})",
                            sc.seed, side_digest[1]
                        ),
                        &mut report,
                    );
                }
            }
            Err(e) => fail(
                "dup-invisible",
                format!("seed {}: dup-free replay failed: {e}", sc.seed),
                &mut report,
            ),
        }
    }

    // --- 8. Durable recovery ---------------------------------------------
    match sc.bad.spill_temp(8) {
        Ok((store, reference)) => {
            // "Kill": recovery sees only the store directory.
            match DurableStore::open(store.dir())
                .and_then(|reopened| sc.bad.recovered_stream_digest(&reopened))
            {
                Ok(got) if got == reference => {}
                Ok(got) => fail(
                    "durable-recovery",
                    format!(
                        "seed {}: recovered digest {got:?} diverges from the \
                         crash-free reference {reference:?}",
                        sc.seed
                    ),
                    &mut report,
                ),
                Err(e) => fail(
                    "durable-recovery",
                    format!("seed {}: recovery failed: {e}", sc.seed),
                    &mut report,
                ),
            }
        }
        Err(e) => fail(
            "durable-recovery",
            format!("seed {}: spill failed: {e}", sc.seed),
            &mut report,
        ),
    }
    // Checkpoint-free recovery reads the whole layer stack, so its digest
    // must equal the uncut in-memory stream digest from leg 1.
    match sc
        .bad
        .spill_temp(0)
        .and_then(|(store, _)| sc.bad.recovered_stream_digest(&store))
    {
        Ok((digest, _)) => {
            if digest != side_digest[1] {
                fail(
                    "durable-recovery",
                    format!(
                        "seed {}: layer-stack replay digest {digest} diverges from \
                         the in-memory digest {}",
                        sc.seed, side_digest[1]
                    ),
                    &mut report,
                );
            }
        }
        Err(e) => fail(
            "durable-recovery",
            format!("seed {}: layer-stack replay failed: {e}", sc.seed),
            &mut report,
        ),
    }

    report
}

/// Convenience: generate and check one seed.
pub fn check_seed(seed: u64) -> BatteryReport {
    check_scenario(&generate_masked(seed, None))
}

/// The configuration-independent rendering of a DiffProv report that the
/// verdict-invariance leg compares: outcome, verification, round count,
/// tree sizes, and the change set — everything except wall-clock metrics.
fn render_verdict(r: &diffprov_core::Report) -> Vec<String> {
    let mut out = vec![
        match &r.failure {
            None => "aligned".to_string(),
            Some(f) => format!("failed: {f}"),
        },
        format!(
            "verified={} rounds={} good_tree={} bad_tree={}",
            r.verified,
            r.rounds.len(),
            r.good_tree_size,
            r.bad_tree_size
        ),
    ];
    out.extend(r.delta.iter().map(|c| c.to_string()));
    out
}

/// Replays `exec` uninterrupted and with snapshot/restore restarts at
/// every cut (cycling the restore shard count through 1, 2, 4), and
/// compares the provenance streams. Returns a divergence description, or
/// `None` when the restarted stream is bit-identical.
fn restart_leg(exec: &Execution, cuts: &[LogicalTime]) -> Result<Option<String>> {
    let reference = {
        let mut eng = serial_engine(exec);
        schedule_range(&mut eng, &exec.log, None, None)?;
        eng.run()?;
        eng.into_sink().events
    };
    let shard_cycle = [1usize, 2, 4];
    let mut restarted: Vec<ProvEvent> = Vec::new();
    let mut eng = serial_engine(exec);
    let mut prev: Option<LogicalTime> = None;
    for (i, &cut) in cuts.iter().enumerate() {
        schedule_range(&mut eng, &exec.log, prev, Some(cut))?;
        eng.run()?;
        let snap = eng.snapshot()?;
        restarted.append(&mut eng.into_sink().events);
        eng = Engine::restore(Arc::clone(&exec.program), snap, VecSink::default())?;
        eng.set_unbatched(false);
        eng.set_threads(1);
        eng.set_shards(shard_cycle[i % shard_cycle.len()]);
        prev = Some(cut);
    }
    schedule_range(&mut eng, &exec.log, prev, None)?;
    eng.run()?;
    restarted.append(&mut eng.into_sink().events);
    if restarted == reference {
        return Ok(None);
    }
    let first = reference
        .iter()
        .zip(&restarted)
        .position(|(a, b)| a != b)
        .unwrap_or(reference.len().min(restarted.len()));
    Ok(Some(format!(
        "restarted stream diverges from the uninterrupted one at event {first} \
         ({} vs {} events; cuts {cuts:?})",
        reference.len(),
        restarted.len()
    )))
}

fn serial_engine(exec: &Execution) -> Engine<VecSink> {
    let mut eng = Engine::new(Arc::clone(&exec.program), VecSink::default());
    eng.set_unbatched(false);
    eng.set_threads(1);
    eng.set_shards(1);
    eng
}

/// Schedules the log events with `after < due <= until` into `eng`.
fn schedule_range(
    eng: &mut Engine<VecSink>,
    log: &EventLog,
    after: Option<LogicalTime>,
    until: Option<LogicalTime>,
) -> Result<()> {
    for e in log.events().iter() {
        if after.is_some_and(|a| e.due <= a) {
            continue;
        }
        if until.is_some_and(|u| e.due > u) {
            break; // The log is sorted by due.
        }
        match e.op {
            BaseOp::Insert => eng.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?,
            BaseOp::Delete => eng.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?,
        }
    }
    Ok(())
}
