//! The seed-sweep driver shared by the CLIs and the test suite.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::battery::{check_scenario, BatteryReport, Violation};
use crate::corpus::CorpusCase;
use crate::scenario::{generate_masked, SimScenario};
use crate::shrink::ddmin;

/// Aggregated results of sweeping a block of seeds.
#[derive(Clone, Debug, Default)]
pub struct SimSummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Scenarios whose good/bad executions delivered differently.
    pub divergent: usize,
    /// Scenarios where DiffProv ran on a misdelivery.
    pub diagnosed: usize,
    /// Scenarios where the diagnosis aligned the trees.
    pub diagnosis_succeeded: usize,
    /// How often each injection kind was applied.
    pub kind_counts: BTreeMap<&'static str, usize>,
    /// Every violation found, with the seed it came from.
    pub violations: Vec<(u64, Violation)>,
    /// Corpus files written for shrunk failing schedules.
    pub corpus_written: Vec<PathBuf>,
}

impl SimSummary {
    /// True when no seed violated any invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps seeds `start..start + count` through the battery. For every
/// failing seed the injection schedule is shrunk with [`ddmin`] and — when
/// `corpus_dir` is given — persisted as a `.case` file there. `progress`
/// is called once per seed with the battery report.
pub fn run_seeds(
    start: u64,
    count: u64,
    corpus_dir: Option<&Path>,
    mut progress: impl FnMut(u64, &BatteryReport),
) -> SimSummary {
    let mut summary = SimSummary {
        seeds: count,
        ..SimSummary::default()
    };
    // Per-sweep handles into the process-wide registry (None when
    // `DP_METRICS` is off). A scrape mid-sweep sees seeds tick up one by
    // one; the distinct-seed sketch survives across sweeps, so re-running
    // overlapping seed blocks does not inflate it.
    let meters = {
        let m = dp_metrics::Metrics::global();
        m.is_enabled().then(|| {
            (
                m.counter("dp_sim_seeds_total", "Fault-injection seeds checked."),
                m.counter(
                    "dp_sim_violations_total",
                    "Invariant violations found across all sweeps.",
                ),
                m.hll(
                    "dp_sim_distinct_seeds",
                    "Approximate distinct seeds ever checked (HLL sketch).",
                ),
                m.time_histogram(
                    "dp_sim_seed_seconds",
                    "Wall-clock latency of one seed's full battery check.",
                ),
            )
        })
    };
    for seed in start..start.saturating_add(count) {
        let timer = meters
            .as_ref()
            .map(|_| std::time::Instant::now());
        let sc = generate_masked(seed, None);
        let report = check_scenario(&sc);
        if let Some((seeds, violations, distinct, seed_secs)) = &meters {
            seeds.inc();
            violations.add(report.violations.len() as u64);
            distinct.observe_u64(seed);
            if let Some(t0) = timer {
                seed_secs.observe_duration(t0.elapsed());
            }
        }
        summary.divergent += usize::from(report.divergent);
        summary.diagnosed += usize::from(report.diagnosed);
        summary.diagnosis_succeeded += usize::from(report.diagnosis_succeeded);
        for kind in &report.kinds {
            *summary.kind_counts.entry(kind).or_default() += 1;
        }
        progress(seed, &report);
        if !report.passed() {
            let (min_keep, min_report) = shrink_failure(&sc);
            if let Some(dir) = corpus_dir {
                match persist_case(dir, seed, &min_keep, &min_report) {
                    Ok(path) => summary.corpus_written.push(path),
                    Err(e) => eprintln!("warning: could not persist corpus case: {e}"),
                }
            }
            summary
                .violations
                .extend(report.violations.into_iter().map(|v| (seed, v)));
        }
    }
    summary
}

/// Shrinks a failing scenario's applied injection set to a 1-minimal
/// failing schedule, returning the kept indexes and the (still failing)
/// report of the minimized scenario.
pub fn shrink_failure(sc: &SimScenario) -> (Vec<usize>, BatteryReport) {
    let min_keep = ddmin(&sc.applied, |keep| {
        !check_scenario(&generate_masked(sc.seed, Some(keep))).passed()
    });
    let min_report = check_scenario(&generate_masked(sc.seed, Some(&min_keep)));
    (min_keep, min_report)
}

fn persist_case(
    dir: &Path,
    seed: u64,
    keep: &[usize],
    report: &BatteryReport,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let invariant = report
        .violations
        .first()
        .map(|v| v.invariant.to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let case = CorpusCase {
        seed,
        keep: Some(keep.to_vec()),
        invariant: invariant.clone(),
        note: format!(
            "auto-shrunk to {} injection(s); first violation: {}",
            keep.len(),
            report
                .violations
                .first()
                .map(|v| v.detail.clone())
                .unwrap_or_default()
        ),
    };
    let path = dir.join(format!("sim-seed{seed}-{invariant}.case"));
    std::fs::write(&path, case.render())?;
    Ok(path)
}
