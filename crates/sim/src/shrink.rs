//! Delta-debugging shrinker for failing injection schedules.
//!
//! When a seed violates an invariant, the interesting question is *which
//! injections* matter. Because masked regeneration keeps the topology and
//! workload fixed (see [`crate::scenario::generate_masked`]), the failing
//! schedule can be minimized by classic ddmin over the applied injection
//! indexes: repeatedly try subsets and complements at doubling
//! granularity, keeping any smaller set that still fails.

/// Minimizes `keep` (a set of injection indexes) such that `fails(&keep)`
/// stays true, using the ddmin algorithm. `fails` must be deterministic;
/// the initial set is assumed failing (if it is not, it is returned
/// unchanged). The result is 1-minimal: removing any single remaining
/// index makes the failure disappear.
pub fn ddmin(initial: &[usize], mut fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut keep: Vec<usize> = initial.to_vec();
    if keep.len() <= 1 || !fails(&keep) {
        return keep;
    }
    let mut n = 2usize;
    while keep.len() >= 2 {
        let chunk = keep.len().div_ceil(n);
        let mut reduced = false;
        // Try each subset, then each complement.
        for start in (0..keep.len()).step_by(chunk) {
            let subset: Vec<usize> = keep[start..(start + chunk).min(keep.len())].to_vec();
            if subset.len() < keep.len() && fails(&subset) {
                keep = subset;
                n = 2;
                reduced = true;
                break;
            }
            let complement: Vec<usize> = keep
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| !(start..(start + chunk).min(keep.len())).contains(&i))
                .map(|(_, v)| v)
                .collect();
            if !complement.is_empty() && complement.len() < keep.len() && fails(&complement) {
                keep = complement;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= keep.len() {
                break;
            }
            n = (n * 2).min(keep.len());
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let initial: Vec<usize> = (0..10).collect();
        let min = ddmin(&initial, |keep| keep.contains(&7));
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn ddmin_keeps_an_interacting_pair() {
        let initial: Vec<usize> = (0..8).collect();
        let min = ddmin(&initial, |keep| keep.contains(&2) && keep.contains(&5));
        assert_eq!(min, vec![2, 5]);
    }

    #[test]
    fn ddmin_returns_input_when_it_does_not_fail() {
        let initial = vec![1, 2, 3];
        let min = ddmin(&initial, |_| false);
        assert_eq!(min, initial);
    }

    #[test]
    fn ddmin_is_deterministic() {
        let initial: Vec<usize> = (0..12).collect();
        let p = |keep: &[usize]| keep.iter().filter(|&&i| i % 3 == 0).count() >= 2;
        assert_eq!(ddmin(&initial, p), ddmin(&initial, p));
    }
}
