//! # dp-sim — seeded fault-injection simulation harness
//!
//! The repro scenarios (SDN1–4, the MapReduce jobs, the campus network)
//! pin nine hand-built diagnosis cases; this crate generates *hundreds*
//! of them. From a single `u64` seed it synthesizes a random SDN
//! topology, a probe-packet workload, and a fault-injection schedule —
//! rule withdrawals and recoveries, delayed and reordered control-plane
//! installs, duplicated packets, engine restarts through the real
//! snapshot/restore path, and racing controller updates whose arrival
//! order flips the forwarding decision (the native good/bad pair). Each
//! scenario runs end-to-end through the deterministic engine, the
//! provenance recorder, the replay layer, and DiffProv, and is held to
//! an invariant battery (see [`battery`]): stream-digest determinism
//! across every engine configuration, provenance-graph well-formedness,
//! verdict invariance of the diagnosis, restart transparency, and
//! duplicate invisibility.
//!
//! When a seed fails, [`shrink::ddmin`] bisects the injection schedule
//! to a 1-minimal failing subset — masked regeneration keeps topology
//! and workload fixed, so the shrunk case is a faithful repro — and the
//! result is persisted as a [`corpus::CorpusCase`] file that the
//! regression suite replays forever after.
//!
//! Entry points: `repro -- sim --seeds N` (the benchmark CLI),
//! `diffprov sim N` (the main CLI), and the default-on pinned seed block
//! in `crates/sim/tests/sim_battery.rs` (`DP_SIM_SEEDS` scales it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod corpus;
pub mod driver;
pub mod scenario;
pub mod shrink;

pub use battery::{check_scenario, check_seed, BatteryReport, Violation};
pub use corpus::{load_corpus, CorpusCase};
pub use driver::{run_seeds, shrink_failure, SimSummary};
pub use scenario::{generate, generate_masked, Injection, Packet, SimScenario};
pub use shrink::ddmin;
