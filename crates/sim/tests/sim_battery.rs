//! The default-on battery run: a pinned block of seeds swept through the
//! full invariant battery, plus structural tests of the generator and
//! the shrinking machinery. `DP_SIM_SEEDS` scales the block (the CI gate
//! runs 32; `repro -- sim --seeds 200` sweeps wider).

use dp_sim::{check_scenario, generate, generate_masked, run_seeds, Injection};

/// How many seeds the pinned block covers by default.
const DEFAULT_SEEDS: u64 = 32;

fn seed_count() -> u64 {
    std::env::var("DP_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEEDS)
}

/// The pinned seed block passes the whole battery, and the sweep is not
/// vacuous: every injection kind occurs, misdeliveries happen, and
/// DiffProv actually aligns some of them.
#[test]
fn pinned_seed_block_passes_the_battery() {
    let summary = run_seeds(0, seed_count(), None, |_, _| {});
    assert!(
        summary.passed(),
        "battery violations:\n{}",
        summary
            .violations
            .iter()
            .map(|(seed, v)| format!("seed {seed}: {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    for kind in [
        "rule-withdraw",
        "rule-restore",
        "delayed-install",
        "reorder-installs",
        "dup-packet",
        "node-restart",
        "race-install",
    ] {
        assert!(
            summary.kind_counts.get(kind).copied().unwrap_or(0) > 0,
            "kind {kind} never applied across {} seeds: {:?}",
            summary.seeds,
            summary.kind_counts
        );
    }
    // Several injection kinds (reorders, duplicates, restarts) are benign
    // by construction, so not every scenario diverges — but at least a
    // quarter must, or the generator has gone tame.
    assert!(
        summary.divergent * 4 >= summary.seeds as usize,
        "only {} of {} scenarios diverged — the generator is too tame",
        summary.divergent,
        summary.seeds
    );
    assert!(
        summary.diagnosed > 0,
        "no scenario produced a diagnosable misdelivery"
    );
    assert!(
        summary.diagnosis_succeeded > 0,
        "DiffProv never aligned a generated misdelivery"
    );
}

/// One seed, generated twice, is identical down to the event logs — the
/// reproducibility contract corpus files depend on.
#[test]
fn same_seed_regenerates_the_same_scenario() {
    for seed in [0u64, 7, 19] {
        let a = generate(seed);
        let b = generate(seed);
        assert_eq!(a.injections, b.injections, "seed {seed}");
        assert_eq!(a.applied, b.applied, "seed {seed}");
        assert_eq!(a.packets, b.packets, "seed {seed}");
        assert_eq!(a.good.log.events(), b.good.log.events(), "seed {seed}");
        assert_eq!(a.bad.log.events(), b.bad.log.events(), "seed {seed}");
    }
}

/// Masking injections away never perturbs the topology, the workload, or
/// the drawn schedule — only which injections are lowered. This is the
/// property that makes ddmin shrinking sound.
#[test]
fn masked_generation_keeps_topology_and_workload_fixed() {
    for seed in 0u64..16 {
        let full = generate(seed);
        let empty = generate_masked(seed, Some(&[]));
        assert_eq!(full.injections, empty.injections, "seed {seed}");
        assert_eq!(full.packets, empty.packets, "seed {seed}");
        assert!(empty.applied.is_empty(), "seed {seed}");
        // With nothing applied, good and bad logs coincide.
        assert_eq!(
            empty.good.log.events(),
            empty.bad.log.events(),
            "seed {seed}"
        );
        // And the masked good log equals the full good log minus the
        // race-winner churn (the only good-side injection effect).
        let race_applied = full
            .applied
            .iter()
            .any(|&i| matches!(full.injections[i], Injection::RaceInstall { .. }));
        if !race_applied {
            assert_eq!(
                full.good.log.events(),
                empty.good.log.events(),
                "seed {seed}"
            );
        }
    }
}

/// An injection-free scenario is benign end to end: no divergence, no
/// violations.
#[test]
fn empty_schedule_is_benign() {
    for seed in [3u64, 11] {
        let sc = generate_masked(seed, Some(&[]));
        let report = check_scenario(&sc);
        assert!(report.passed(), "seed {seed}: {:?}", report.violations);
        assert!(!report.divergent, "seed {seed} diverged with no faults");
    }
}

/// The sweep driver aggregates per-seed reports consistently.
#[test]
fn run_seeds_aggregates_counters() {
    let mut seen = Vec::new();
    let summary = run_seeds(0, 4, None, |seed, report| {
        seen.push((seed, report.divergent));
    });
    assert_eq!(seen.len(), 4);
    assert_eq!(summary.seeds, 4);
    assert_eq!(
        summary.divergent,
        seen.iter().filter(|(_, d)| *d).count()
    );
    let applied: usize = (0..4).map(|s| generate(s).applied.len()).sum();
    assert_eq!(summary.kind_counts.values().sum::<usize>(), applied);
}
