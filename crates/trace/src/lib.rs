//! # dp-trace — deterministic tracing and metrics for the DiffProv stack
//!
//! A zero-overhead-when-disabled span/event tracer shared by the NDlog
//! engine, the provenance recorder, the replay layer, the DiffProv
//! pipeline, and the benchmark harness. One subsystem, three sinks:
//!
//! * a JSONL event stream ([`Trace::to_jsonl`]);
//! * a Chrome `trace_event` export loadable in Perfetto / `chrome://tracing`
//!   ([`Trace::to_chrome`]);
//! * an in-process [`Aggregate`] with per-span timing histograms and
//!   counter totals, from which the bench crate derives its numbers so
//!   BENCH output and traces can never disagree.
//!
//! ## The determinism contract
//!
//! Every event carries a [`Class`]:
//!
//! * [`Class::Skeleton`] events are **deterministic**: their names, logical
//!   timestamps, and argument values depend only on the program and its
//!   input log — not on thread count, batching discipline, or join access
//!   path. The rendering produced by [`Trace::skeleton`] is bit-identical
//!   across all engine configurations; the differential suites assert this.
//! * [`Class::Effort`] events describe *how much work a particular
//!   configuration did* (batch flushes, probe/scan counts, parallel merge
//!   phases). They are free to differ between configurations and are
//!   excluded from the skeleton.
//!
//! Wall-clock durations are non-deterministic by nature and are therefore
//! carried outside the skeleton on **every** event class.
//!
//! ## Overhead
//!
//! A disabled tracer ([`Tracer::disabled`], the default) holds no
//! allocation at all; every operation is a branch on an `Option`. An
//! aggregate-only tracer ([`Tracer::aggregate_only`]) updates histograms
//! but buffers no events. A full tracer ([`Tracer::full`]) records the
//! event stream as well. Instrumented code must still keep tracing off
//! per-tuple hot paths — the engine only emits spans at batch/phase
//! granularity and counters at quiescence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dp_types::{LogicalTime, SpanId, TraceId};

/// Determinism class of a trace event. See the crate docs for the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Deterministic: identical across thread counts and engine
    /// configurations; part of the diffable skeleton.
    Skeleton,
    /// Configuration-dependent effort (batching, probes, scans, merges);
    /// excluded from the skeleton.
    Effort,
}

impl Class {
    /// Lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            Class::Skeleton => "skeleton",
            Class::Effort => "effort",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened.
    SpanBegin {
        /// Span identity (sequential within the trace).
        id: SpanId,
        /// Span name (dot-separated taxonomy, e.g. `engine.run`).
        name: String,
        /// Determinism class.
        class: Class,
        /// Logical clock at open, when the caller has one.
        lt: Option<LogicalTime>,
        /// Wall-clock nanoseconds since the tracer epoch (non-deterministic).
        wall_ns: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Span identity matching the corresponding [`TraceEvent::SpanBegin`].
        id: SpanId,
        /// Span name.
        name: String,
        /// Determinism class.
        class: Class,
        /// Logical clock at close, when the caller has one.
        lt: Option<LogicalTime>,
        /// Deterministic (for skeleton spans) key/value payload.
        args: Vec<(&'static str, u64)>,
        /// Wall-clock nanoseconds since the tracer epoch (non-deterministic).
        wall_ns: u64,
    },
    /// A point-in-time event.
    Instant {
        /// Event name.
        name: String,
        /// Determinism class.
        class: Class,
        /// Logical clock, when the caller has one.
        lt: Option<LogicalTime>,
        /// Key/value payload.
        args: Vec<(&'static str, u64)>,
        /// Wall-clock nanoseconds since the tracer epoch (non-deterministic).
        wall_ns: u64,
    },
    /// A counter increment (also accumulated into the [`Aggregate`]).
    Counter {
        /// Counter name.
        name: String,
        /// Determinism class.
        class: Class,
        /// Amount added to the counter.
        value: u64,
        /// Wall-clock nanoseconds since the tracer epoch (non-deterministic).
        wall_ns: u64,
    },
}

impl TraceEvent {
    /// The event's determinism class.
    pub fn class(&self) -> Class {
        match self {
            TraceEvent::SpanBegin { class, .. }
            | TraceEvent::SpanEnd { class, .. }
            | TraceEvent::Instant { class, .. }
            | TraceEvent::Counter { class, .. } => *class,
        }
    }

    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            TraceEvent::SpanBegin { name, .. }
            | TraceEvent::SpanEnd { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => name,
        }
    }
}

/// Number of power-of-two latency buckets in a [`SpanStat`] histogram.
pub const HIST_BUCKETS: usize = 40;

/// Aggregated timing for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time across all completions, nanoseconds.
    pub total_ns: u64,
    /// Shortest completion, nanoseconds.
    pub min_ns: u64,
    /// Longest completion, nanoseconds.
    pub max_ns: u64,
    /// Log2 latency histogram: bucket `i` counts durations in
    /// `[2^(i-1), 2^i)` ns (bucket 0 is `[0, 1)`).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl SpanStat {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::bucket_index(ns)] += 1;
    }

    /// The histogram bucket a duration falls into.
    pub fn bucket_index(ns: u64) -> usize {
        ((64 - u64::leading_zeros(ns)) as usize).min(HIST_BUCKETS - 1)
    }

    /// Mean completion time in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// In-process aggregation: per-span-name timing histograms plus counter
/// totals. Snapshots are cheap clones; the bench harness derives its
/// figures by differencing two snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Timing per span name, keyed deterministically.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals (accumulated across [`Tracer::counter`] calls).
    pub counters: BTreeMap<String, u64>,
}

impl Aggregate {
    /// Total nanoseconds spent in spans of `name` (0 if never seen).
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.total_ns)
    }

    /// Total seconds spent in spans of `name`.
    pub fn total_secs(&self, name: &str) -> f64 {
        self.total_ns(name) as f64 / 1e9
    }

    /// Completion count for spans of `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.count)
    }

    /// Current total of counter `name` (0 if never seen).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose names start with `prefix`, in name order. Used
    /// for families of per-instance counters (e.g. `shard.deltas.<i>`)
    /// where the instance count is not known to the reader up front.
    pub fn counters_prefixed(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, v)| (name.clone(), *v))
            .collect()
    }

    /// Hand-rolled JSON rendering of the full aggregate (no histogram
    /// buckets with zero entries are elided; bucket arrays are kept as-is
    /// for simplicity of downstream tooling).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"spans\":{");
        for (i, (name, st)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                json_string(name),
                st.count,
                st.total_ns,
                if st.count == 0 { 0 } else { st.min_ns },
                st.max_ns
            );
        }
        s.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_string(name), v);
        }
        s.push_str("}}");
        s
    }
}

#[derive(Debug)]
struct Inner {
    id: TraceId,
    epoch: Instant,
    record: bool,
    next_span: u64,
    events: Vec<TraceEvent>,
    agg: Aggregate,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of tracer lifetime.
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Handle to a trace. Cloning shares the underlying buffer, so one tracer
/// can be threaded through an engine, its provenance sink, and the
/// DiffProv pipeline to interleave their events in a single stream.
///
/// The default value is **disabled** and costs nothing.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
    // Mirrors `Inner::record` so instants (which carry no duration and so
    // contribute nothing to the aggregate) can skip the lock entirely in
    // aggregate-only mode. Never changes after construction.
    record: bool,
}

fn env_trace_mode() -> u8 {
    static MODE: OnceLock<u8> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("DP_TRACE") {
        Err(_) => 0,
        Ok(v) if v.is_empty() || v == "0" => 0,
        Ok(v) if v == "agg" => 1,
        Ok(_) => 2,
    })
}

impl Tracer {
    fn with_mode(record: bool) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                id: TraceId::next(),
                epoch: Instant::now(),
                record,
                next_span: 1,
                events: Vec::new(),
                agg: Aggregate::default(),
            }))),
            record,
        }
    }

    /// A disabled tracer: every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            record: false,
        }
    }

    /// An enabled tracer that updates the [`Aggregate`] but buffers no
    /// events — what the bench harness uses for timing.
    pub fn aggregate_only() -> Self {
        Self::with_mode(false)
    }

    /// A fully recording tracer: aggregate plus the complete event stream.
    pub fn full() -> Self {
        Self::with_mode(true)
    }

    /// The process-wide default selected by the `DP_TRACE` environment
    /// variable, read once per process: unset/`0` → disabled, `agg` →
    /// aggregate-only, anything else → full recording. Each call returns
    /// a **fresh** tracer of that mode (callers that want one shared
    /// stream clone a single tracer instead).
    pub fn from_env() -> Self {
        match env_trace_mode() {
            0 => Self::disabled(),
            1 => Self::aggregate_only(),
            _ => Self::full(),
        }
    }

    /// Whether any recording or aggregation is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This trace's id, if enabled.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner
            .as_ref()
            .map(|i| i.lock().expect("tracer poisoned").id)
    }

    /// Opens a span. The returned guard records the close either through
    /// [`Span::end`] (with a logical clock and argument payload) or on
    /// drop (with neither).
    pub fn span(&self, name: &str, class: Class, lt: Option<LogicalTime>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { live: None };
        };
        let mut g = inner.lock().expect("tracer poisoned");
        let id = SpanId::from_u64(g.next_span);
        g.next_span += 1;
        let wall_ns = g.now_ns();
        if g.record {
            g.events.push(TraceEvent::SpanBegin {
                id,
                name: name.to_string(),
                class,
                lt,
                wall_ns,
            });
        }
        drop(g);
        Span {
            live: Some(SpanLive {
                inner: Arc::clone(inner),
                id,
                name: name.to_string(),
                class,
                start_ns: wall_ns,
            }),
        }
    }

    /// Records a point-in-time event.
    pub fn instant(
        &self,
        name: &str,
        class: Class,
        lt: Option<LogicalTime>,
        args: &[(&'static str, u64)],
    ) {
        if !self.record {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("tracer poisoned");
        let wall_ns = g.now_ns();
        if g.record {
            g.events.push(TraceEvent::Instant {
                name: name.to_string(),
                class,
                lt,
                args: args.to_vec(),
                wall_ns,
            });
        }
    }

    /// Adds `value` to counter `name` in the aggregate (and records a
    /// counter event when fully recording).
    pub fn counter(&self, name: &str, class: Class, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("tracer poisoned");
        let wall_ns = g.now_ns();
        *g.agg.counters.entry(name.to_string()).or_insert(0) += value;
        if g.record {
            g.events.push(TraceEvent::Counter {
                name: name.to_string(),
                class,
                value,
                wall_ns,
            });
        }
    }

    /// A snapshot of the current aggregate (empty when disabled).
    pub fn aggregate(&self) -> Aggregate {
        match &self.inner {
            None => Aggregate::default(),
            Some(inner) => inner.lock().expect("tracer poisoned").agg.clone(),
        }
    }

    /// Drains the buffered event stream into a [`Trace`] (with a clone of
    /// the aggregate). The tracer stays usable; subsequent events start a
    /// fresh buffer while the aggregate keeps accumulating.
    pub fn finish(&self) -> Trace {
        match &self.inner {
            None => Trace {
                trace_id: None,
                events: Vec::new(),
                aggregate: Aggregate::default(),
            },
            Some(inner) => {
                let mut g = inner.lock().expect("tracer poisoned");
                Trace {
                    trace_id: Some(g.id),
                    events: std::mem::take(&mut g.events),
                    aggregate: g.agg.clone(),
                }
            }
        }
    }
}

struct SpanLive {
    inner: Arc<Mutex<Inner>>,
    id: SpanId,
    name: String,
    class: Class,
    start_ns: u64,
}

/// Guard for an open span. Close it explicitly with [`Span::end`] to attach
/// a logical clock and arguments; dropping it closes with neither.
#[must_use = "dropping a span immediately records a zero-length interval"]
pub struct Span {
    live: Option<SpanLive>,
}

impl Span {
    /// Closes the span, tagging the end event with a logical clock and a
    /// deterministic argument payload.
    pub fn end(mut self, lt: Option<LogicalTime>, args: &[(&'static str, u64)]) {
        self.close(lt, args);
    }

    fn close(&mut self, lt: Option<LogicalTime>, args: &[(&'static str, u64)]) {
        let Some(live) = self.live.take() else { return };
        let mut g = live.inner.lock().expect("tracer poisoned");
        let wall_ns = g.now_ns();
        let dur = wall_ns.saturating_sub(live.start_ns);
        g.agg.spans.entry(live.name.clone()).or_default().observe(dur);
        if g.record {
            g.events.push(TraceEvent::SpanEnd {
                id: live.id,
                name: live.name,
                class: live.class,
                lt,
                args: args.to_vec(),
                wall_ns,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close(None, &[]);
    }
}

/// A finished (or drained) trace: the event stream plus the aggregate at
/// drain time.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Identity of the originating tracer (None if it was disabled).
    pub trace_id: Option<TraceId>,
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Aggregate snapshot taken when the trace was drained.
    pub aggregate: Aggregate,
}

impl Trace {
    /// Renders the deterministic event skeleton: every [`Class::Skeleton`]
    /// event's kind, name, logical clock, and arguments — and nothing
    /// non-deterministic (no wall times, no span/trace ids, no effort
    /// events). Two runs of the same program on the same log produce
    /// bit-identical skeletons in every engine configuration.
    pub fn skeleton(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            if ev.class() != Class::Skeleton {
                continue;
            }
            match ev {
                TraceEvent::SpanBegin { name, lt, .. } => {
                    let _ = write!(out, "B {name}");
                    push_lt(&mut out, *lt);
                }
                TraceEvent::SpanEnd { name, lt, args, .. } => {
                    let _ = write!(out, "E {name}");
                    push_lt(&mut out, *lt);
                    push_args(&mut out, args);
                }
                TraceEvent::Instant { name, lt, args, .. } => {
                    let _ = write!(out, "I {name}");
                    push_lt(&mut out, *lt);
                    push_args(&mut out, args);
                }
                TraceEvent::Counter { name, value, .. } => {
                    let _ = write!(out, "C {name} +{value}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Full-fidelity JSONL: one JSON object per event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                TraceEvent::SpanBegin { id, name, class, lt, wall_ns } => {
                    let _ = write!(
                        out,
                        "{{\"ev\":\"B\",\"span\":{},\"name\":{},\"class\":\"{}\"",
                        id.as_u64(),
                        json_string(name),
                        class.label()
                    );
                    jsonl_tail(&mut out, *lt, &[], *wall_ns);
                }
                TraceEvent::SpanEnd { id, name, class, lt, args, wall_ns } => {
                    let _ = write!(
                        out,
                        "{{\"ev\":\"E\",\"span\":{},\"name\":{},\"class\":\"{}\"",
                        id.as_u64(),
                        json_string(name),
                        class.label()
                    );
                    jsonl_tail(&mut out, *lt, args, *wall_ns);
                }
                TraceEvent::Instant { name, class, lt, args, wall_ns } => {
                    let _ = write!(
                        out,
                        "{{\"ev\":\"I\",\"name\":{},\"class\":\"{}\"",
                        json_string(name),
                        class.label()
                    );
                    jsonl_tail(&mut out, *lt, args, *wall_ns);
                }
                TraceEvent::Counter { name, class, value, wall_ns } => {
                    let _ = write!(
                        out,
                        "{{\"ev\":\"C\",\"name\":{},\"class\":\"{}\",\"value\":{}",
                        json_string(name),
                        class.label(),
                        value
                    );
                    jsonl_tail(&mut out, None, &[], *wall_ns);
                }
            }
        }
        out
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
    /// format), loadable in Perfetto or `chrome://tracing`. All events are
    /// placed on pid 1 / tid 1 — spans are only emitted from serial code,
    /// so they nest correctly on a single track. Timestamps are
    /// microseconds since the tracer epoch; the logical clock and class
    /// ride along in `args`.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match ev {
                TraceEvent::SpanBegin { name, class, lt, wall_ns, .. } => {
                    chrome_event(&mut out, "B", name, class.label(), *lt, &[], *wall_ns, None);
                }
                TraceEvent::SpanEnd { name, class, lt, args, wall_ns, .. } => {
                    chrome_event(&mut out, "E", name, class.label(), *lt, args, *wall_ns, None);
                }
                TraceEvent::Instant { name, class, lt, args, wall_ns } => {
                    chrome_event(&mut out, "i", name, class.label(), *lt, args, *wall_ns, None);
                }
                TraceEvent::Counter { name, class, value, wall_ns } => {
                    chrome_event(
                        &mut out,
                        "C",
                        name,
                        class.label(),
                        None,
                        &[],
                        *wall_ns,
                        Some(*value),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn push_lt(out: &mut String, lt: Option<LogicalTime>) {
    match lt {
        Some(t) => {
            let _ = write!(out, " lt={t}");
        }
        None => out.push_str(" lt=-"),
    }
}

fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
    for (k, v) in args {
        let _ = write!(out, " {k}={v}");
    }
}

fn jsonl_tail(out: &mut String, lt: Option<LogicalTime>, args: &[(&'static str, u64)], wall_ns: u64) {
    if let Some(t) = lt {
        let _ = write!(out, ",\"lt\":{t}");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    let _ = write!(out, ",\"wall_ns\":{wall_ns}}}");
    out.push('\n');
}

#[allow(clippy::too_many_arguments)]
fn chrome_event(
    out: &mut String,
    ph: &str,
    name: &str,
    cat: &str,
    lt: Option<LogicalTime>,
    args: &[(&'static str, u64)],
    wall_ns: u64,
    counter_value: Option<u64>,
) {
    let ts_us = wall_ns as f64 / 1e3;
    let _ = write!(
        out,
        "{{\"name\":{},\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":1,\"tid\":1",
        json_string(name)
    );
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(v) = counter_value {
        let _ = write!(out, "\"value\":{v}");
        first = false;
    }
    if let Some(t) = lt {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "\"lt\":{t}");
        first = false;
    }
    for (k, v) in args {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
        first = false;
    }
    out.push_str("}}");
}

/// Renders `s` as a JSON string literal (quotes included), escaping per
/// RFC 8259. Shared by the trace exporters and the hand-rolled JSON
/// writers elsewhere in the workspace.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(t.trace_id().is_none());
        let span = t.span("x", Class::Skeleton, Some(1));
        t.instant("y", Class::Effort, None, &[("k", 1)]);
        t.counter("c", Class::Skeleton, 5);
        span.end(Some(2), &[("n", 3)]);
        let trace = t.finish();
        assert!(trace.events.is_empty());
        assert!(trace.aggregate.spans.is_empty());
        assert!(trace.aggregate.counters.is_empty());
        assert_eq!(trace.skeleton(), "");
    }

    #[test]
    fn aggregate_only_buffers_nothing_but_counts() {
        let t = Tracer::aggregate_only();
        assert!(t.is_enabled());
        let s = t.span("engine.run", Class::Skeleton, Some(0));
        s.end(Some(9), &[]);
        t.counter("derivations", Class::Skeleton, 7);
        t.counter("derivations", Class::Skeleton, 3);
        let trace = t.finish();
        assert!(trace.events.is_empty());
        assert_eq!(trace.aggregate.span_count("engine.run"), 1);
        assert_eq!(trace.aggregate.counter("derivations"), 10);
    }

    #[test]
    fn skeleton_excludes_effort_and_wall_time() {
        let t = Tracer::full();
        let s = t.span("engine.run", Class::Skeleton, Some(0));
        let e = t.span("engine.flush", Class::Effort, Some(3));
        t.instant("engine.tick", Class::Skeleton, Some(4), &[("due", 4)]);
        e.end(Some(4), &[("deltas", 2)]);
        t.counter("engine.events", Class::Skeleton, 12);
        s.end(Some(9), &[("events", 12)]);
        let trace = t.finish();
        let sk = trace.skeleton();
        assert_eq!(
            sk,
            "B engine.run lt=0\nI engine.tick lt=4 due=4\nC engine.events +12\nE engine.run lt=9 events=12\n"
        );
        assert!(!sk.contains("flush"));
        // Effort spans still feed the aggregate.
        assert_eq!(trace.aggregate.span_count("engine.flush"), 1);
    }

    #[test]
    fn skeleton_is_identical_across_tracers_with_different_timing() {
        let render = || {
            let t = Tracer::full();
            let s = t.span("a", Class::Skeleton, Some(1));
            std::thread::sleep(std::time::Duration::from_millis(2));
            s.end(Some(2), &[("k", 9)]);
            t.finish()
        };
        let (t1, t2) = (render(), render());
        assert_eq!(t1.skeleton(), t2.skeleton());
        // The raw streams differ in wall time.
        assert_ne!(t1.events, t2.events);
    }

    #[test]
    fn drop_closes_span_and_feeds_aggregate() {
        let t = Tracer::full();
        {
            let _s = t.span("scoped", Class::Effort, None);
        }
        let trace = t.finish();
        assert_eq!(trace.aggregate.span_count("scoped"), 1);
        assert!(matches!(trace.events[1], TraceEvent::SpanEnd { ref name, .. } if name == "scoped"));
    }

    #[test]
    fn chrome_export_shape() {
        let t = Tracer::full();
        let s = t.span("engine.run", Class::Skeleton, Some(0));
        t.counter("probes", Class::Effort, 4);
        s.end(Some(5), &[("events", 1)]);
        let j = t.finish().to_chrome();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"cat\":\"skeleton\""));
        assert!(j.contains("\"pid\":1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let t = Tracer::full();
        let s = t.span("a", Class::Skeleton, None);
        t.instant("i", Class::Skeleton, Some(3), &[("x", 1), ("y", 2)]);
        s.end(None, &[]);
        let trace = t.finish();
        let jl = trace.to_jsonl();
        assert_eq!(jl.lines().count(), trace.events.len());
        assert!(jl.contains("\"args\":{\"x\":1,\"y\":2}"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn histogram_buckets_cover_durations() {
        assert_eq!(SpanStat::bucket_index(0), 0);
        assert_eq!(SpanStat::bucket_index(1), 1);
        assert_eq!(SpanStat::bucket_index(2), 2);
        assert_eq!(SpanStat::bucket_index(3), 2);
        assert_eq!(SpanStat::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let mut st = SpanStat::default();
        st.observe(100);
        st.observe(200);
        assert_eq!(st.count, 2);
        assert_eq!(st.total_ns, 300);
        assert_eq!(st.min_ns, 100);
        assert_eq!(st.max_ns, 200);
        assert_eq!(st.mean_ns(), 150);
        assert_eq!(st.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn shared_clone_interleaves_into_one_stream() {
        let t = Tracer::full();
        let t2 = t.clone();
        t.instant("from.a", Class::Skeleton, None, &[]);
        t2.instant("from.b", Class::Skeleton, None, &[]);
        let trace = t.finish();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].name(), "from.a");
        assert_eq!(trace.events[1].name(), "from.b");
        // Finishing drained the shared buffer.
        assert!(t2.finish().events.is_empty());
    }

    #[test]
    fn counters_prefixed_selects_a_family_in_order() {
        let t = Tracer::aggregate_only();
        t.counter("shard.deltas.0", Class::Effort, 5);
        t.counter("shard.deltas.2", Class::Effort, 7);
        t.counter("shard.deltas.1", Class::Effort, 6);
        t.counter("shard.msgs", Class::Effort, 9);
        t.counter("other", Class::Effort, 1);
        let agg = t.aggregate();
        assert_eq!(
            agg.counters_prefixed("shard.deltas."),
            vec![
                ("shard.deltas.0".to_string(), 5),
                ("shard.deltas.1".to_string(), 6),
                ("shard.deltas.2".to_string(), 7),
            ]
        );
        assert!(agg.counters_prefixed("absent.").is_empty());
    }

    #[test]
    fn aggregate_json_shape() {
        let t = Tracer::aggregate_only();
        t.span("p", Class::Skeleton, None).end(None, &[]);
        t.counter("c", Class::Skeleton, 3);
        let j = t.aggregate().to_json();
        assert!(j.starts_with("{\"spans\":{\"p\":{\"count\":1,"));
        assert!(j.contains("\"counters\":{\"c\":3}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
