//! Property tests for the annotation store's min-height maintenance.
//!
//! The compact backend records one `(start, end, height, cause)` record
//! per episode, where `height` is the derivation depth of the episode-
//! opening proof: 0 for base facts and boundary episodes, and
//! `1 + max(body episode heights)` for derivations. The reconstructor
//! leans on that number twice — as an exactness filter (a candidate body
//! must reproduce the recorded height) and as the termination bound for
//! the body search on cyclic rule sets — so these tests pin it down
//! independently of the recording code path:
//!
//! 1. **Exactness** — for every episode of every tuple, the stored height
//!    equals the DERIVE-depth of the proof tree reconstructed at the
//!    episode's start (DetRng-seeded schedules with heavy same-timestamp
//!    insert/delete/re-derive churn).
//! 2. **Monotone re-annotation** — deleting a tuple's support and
//!    re-deriving it through a shorter rule at the *same* timestamp opens
//!    a fresh episode annotated with the new, smaller height: annotations
//!    follow the current minimal proof instead of sticking to a dead one
//!    (and re-deriving through a longer path raises it again).
//! 3. **Cyclic programs** — on hand-built cyclic rule sets (`p → q → p`)
//!    the heights are the pinned BFS depths from the seeding base fact,
//!    redundant around-the-loop re-derivations never disturb them, and
//!    reconstruction terminates and matches graph extraction exactly.

use std::sync::Arc;

use dp_ndlog::{Engine, Program};
use dp_provenance::{
    extract_tree, reconstruct_tree, AnnotRecorder, AnnotationStore, GraphRecorder, ProvGraph,
    ProvTree, VertexKind,
};
use dp_types::{
    tuple, DetRng, FieldType, NodeId, Schema, SchemaRegistry, TableKind, Tuple, TupleRef,
};

/// Base table `b` (int × int) plus a derivation ladder with a shortcut:
/// `mid` sits one step above `b`, `top` two steps — unless the shortcut
/// base `f` is present, in which case `top` is derivable in one step.
fn ladder_program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    for t in ["b", "f"] {
        reg.declare(Schema::new(
            t,
            TableKind::MutableBase,
            [("x", FieldType::Int), ("y", FieldType::Int)],
        ));
    }
    for t in ["mid", "top"] {
        reg.declare(Schema::new(t, TableKind::Derived, [("v", FieldType::Int)]));
    }
    Program::builder(reg)
        .rules_text(
            "rm mid(@N, X) :- b(@N, X, _).\n\
             rt top(@N, X) :- mid(@N, X).\n\
             rf top(@N, X) :- f(@N, X, _).\n",
        )
        .unwrap()
        .build()
        .unwrap()
}

/// `p` and `q` derive each other in a cycle, seeded from base `b`.
fn cyclic_program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new(
        "b",
        TableKind::MutableBase,
        [("x", FieldType::Int), ("y", FieldType::Int)],
    ));
    for t in ["p", "q"] {
        reg.declare(Schema::new(t, TableKind::Derived, [("v", FieldType::Int)]));
    }
    Program::builder(reg)
        .rules_text(
            "rp p(@N, X) :- b(@N, X, _).\n\
             rq q(@N, X) :- p(@N, X).\n\
             rc p(@N, X) :- q(@N, X).\n",
        )
        .unwrap()
        .build()
        .unwrap()
}

/// Runs one schedule into both backends.
fn run_both(
    program: &Arc<Program>,
    ops: &[(bool, u64, Tuple)],
) -> (ProvGraph, AnnotationStore) {
    let mut graph_eng = Engine::new(Arc::clone(program), GraphRecorder::new());
    let mut annot_eng = Engine::new(Arc::clone(program), AnnotRecorder::new(Arc::clone(program)));
    for &(delete, due, ref tup) in ops {
        let n = NodeId::new("n");
        if delete {
            graph_eng.schedule_delete(due, n.clone(), tup.clone()).unwrap();
            annot_eng.schedule_delete(due, n, tup.clone()).unwrap();
        } else {
            graph_eng.schedule_insert(due, n.clone(), tup.clone()).unwrap();
            annot_eng.schedule_insert(due, n, tup.clone()).unwrap();
        }
    }
    graph_eng.run().unwrap();
    annot_eng.run().unwrap();
    (graph_eng.into_sink().finish(), annot_eng.into_sink().finish())
}

/// The DERIVE-depth of a proof tree: how many DERIVE vertexes the deepest
/// root-to-leaf path crosses. This is the independent recomputation of
/// the stored height.
fn derive_depth(tree: &ProvTree, idx: usize) -> u32 {
    let n = tree.node(idx);
    let inc = u32::from(matches!(n.kind, VertexKind::Derive { .. }));
    inc + n
        .children
        .iter()
        .map(|&c| derive_depth(tree, c))
        .max()
        .unwrap_or(0)
}

/// Every episode's stored height equals the DERIVE-depth of the tree
/// reconstructed at the episode's start; checked over the tuples of the
/// store itself, so the assertion also covers boundary synthesis.
fn assert_heights_exact(graph: &ProvGraph, store: &AnnotationStore, label: &str) -> usize {
    let mut checked = 0;
    let trefs: Vec<TupleRef> = graph
        .vertices()
        .iter()
        .map(|v| TupleRef::new(v.node.clone(), Arc::clone(&v.tuple)))
        .collect();
    for tref in &trefs {
        for ep in store.episodes(tref) {
            let tree = reconstruct_tree(store, tref, ep.start)
                .unwrap_or_else(|| panic!("{label}: {tref}@{}: no tree", ep.start));
            assert_eq!(
                ep.height,
                derive_depth(&tree, ProvTree::ROOT),
                "{label}: {tref}@{}: stored height diverges from the tree depth",
                ep.start
            );
            checked += 1;
        }
    }
    checked
}

/// Property 1: DetRng-seeded same-timestamp churn over the ladder
/// program. Dues are drawn from a tiny domain so deletes, re-inserts and
/// re-derivations of one tuple routinely collide on a single timestamp.
#[test]
fn heights_are_exact_under_seeded_churn() {
    let mut rng = DetRng::seed_from_u64(0x4E16_4750);
    let program = ladder_program();
    let mut checked = 0;
    for _ in 0..40 {
        let ops: Vec<(bool, u64, Tuple)> = (0..rng.gen_range_usize(4, 28))
            .map(|_| {
                let table = ["b", "f"][rng.gen_range_usize(0, 2)];
                (
                    rng.gen_bool(0.35),
                    rng.gen_range_u64(0, 4),
                    tuple!(table, rng.gen_range_i64(0, 3), rng.gen_range_i64(0, 2)),
                )
            })
            .collect();
        let (graph, store) = run_both(&program, &ops);
        checked += assert_heights_exact(&graph, &store, "churn");
    }
    assert!(checked > 200, "suite barely checked: {checked} episodes");
}

/// Property 2: the pinned monotonicity vector. `top(1)` first lives via
/// the two-step ladder (height 2); deleting its support and inserting the
/// shortcut base *at the same timestamp* re-derives it at height 1; a
/// later flip back to the ladder raises it to 2 again. Each re-derivation
/// opens a fresh episode whose annotation reflects the now-minimal proof.
#[test]
fn rederivation_at_same_timestamp_reannotates_the_height() {
    let program = ladder_program();
    let ops = [
        (false, 1, tuple!("b", 1, 0)),  // ladder support: top at height 2
        (true, 10, tuple!("b", 1, 0)),  // same due: drop the ladder ...
        (false, 10, tuple!("f", 1, 0)), // ... and re-derive via the shortcut
        (true, 20, tuple!("f", 1, 0)),  // flip back to the ladder
        (false, 20, tuple!("b", 1, 0)),
    ];
    let (graph, store) = run_both(&program, &ops);
    let top = TupleRef::new("n", tuple!("top", 1));
    let heights: Vec<u32> = store.episodes(&top).iter().map(|e| e.height).collect();
    assert_eq!(heights, [2, 1, 2], "episode heights over the churn");
    // The intervals chain across the same-timestamp swaps.
    let spans: Vec<(u64, Option<u64>)> =
        store.episodes(&top).iter().map(|e| (e.start, e.end)).collect();
    assert_eq!(spans.len(), 3);
    assert!(spans[0].1.is_some() && spans[1].1.is_some() && spans[2].1.is_none());
    assert_heights_exact(&graph, &store, "pinned churn");
    // And the reconstructed trees match graph extraction at every start.
    for ep in store.episodes(&top) {
        assert_eq!(
            extract_tree(&graph, &top, ep.start).unwrap().render(),
            reconstruct_tree(&store, &top, ep.start).unwrap().render()
        );
    }
}

/// Property 3: the hand-built cycle. Heights are the BFS depths from the
/// seeding base fact (b=0, p=1, q=2); the around-the-loop re-derivation
/// of `p` (height 3, redundant) never disturbs the annotation; and the
/// height-bounded reconstruction terminates on the cyclic rule set and
/// matches extraction byte-for-byte.
#[test]
fn cyclic_programs_pin_bfs_heights_and_reconstruct() {
    let program = cyclic_program();
    let ops = [(false, 1, tuple!("b", 7, 0))];
    let (graph, store) = run_both(&program, &ops);
    for (tref, want) in [
        (TupleRef::new("n", tuple!("b", 7, 0)), 0u32),
        (TupleRef::new("n", tuple!("p", 7)), 1),
        (TupleRef::new("n", tuple!("q", 7)), 2),
    ] {
        let eps = store.episodes(&tref);
        assert_eq!(eps.len(), 1, "{tref}");
        assert_eq!(eps[0].height, want, "{tref}");
        assert_eq!(
            extract_tree(&graph, &tref, eps[0].start).unwrap().render(),
            reconstruct_tree(&store, &tref, eps[0].start).unwrap().render(),
            "{tref}"
        );
    }
    assert_heights_exact(&graph, &store, "cycle");
}

/// Property 3, churned: seeded insert/delete churn over the cyclic
/// program. Support counting may keep the loop alive through base
/// deletions; whatever the engine records, the annotations must stay
/// exact and every reconstruction must terminate and match extraction.
#[test]
fn cyclic_churn_stays_exact() {
    let mut rng = DetRng::seed_from_u64(0xC1C1_E0DE);
    let program = cyclic_program();
    let mut checked = 0;
    for _ in 0..25 {
        let ops: Vec<(bool, u64, Tuple)> = (0..rng.gen_range_usize(2, 16))
            .map(|_| {
                (
                    rng.gen_bool(0.4),
                    rng.gen_range_u64(0, 4),
                    tuple!("b", rng.gen_range_i64(0, 2), rng.gen_range_i64(0, 2)),
                )
            })
            .collect();
        let (graph, store) = run_both(&program, &ops);
        checked += assert_heights_exact(&graph, &store, "cyclic churn");
        for tref in graph
            .vertices()
            .iter()
            .map(|v| TupleRef::new(v.node.clone(), Arc::clone(&v.tuple)))
        {
            for ep in store.episodes(&tref) {
                assert_eq!(
                    extract_tree(&graph, &tref, ep.start).unwrap().render(),
                    reconstruct_tree(&store, &tref, ep.start).unwrap().render(),
                    "{tref}@{}",
                    ep.start
                );
            }
        }
    }
    assert!(checked > 100, "suite barely checked: {checked} episodes");
}
