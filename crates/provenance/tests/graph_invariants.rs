//! Property tests: structural invariants of the temporal provenance graph
//! hold under arbitrary insertion/deletion schedules.

use std::sync::Arc;

use proptest::prelude::*;

use dp_ndlog::{Engine, Program};
use dp_provenance::{extract_tree, GraphRecorder, ProvGraph, VertexKind};
use dp_types::{tuple, FieldType, NodeId, Schema, SchemaRegistry, Sym, TableKind, TupleRef};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("e", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("k", TableKind::MutableBase, [("v", FieldType::Int)]));
    reg.declare(Schema::new("m", TableKind::Derived, [("y", FieldType::Int)]));
    reg.declare(Schema::new("t", TableKind::Derived, [("y", FieldType::Int)]));
    Program::builder(reg)
        .rules_text(
            "r1 m(@N, Y) :- e(@N, X), k(@N, V), Y := X + V.\n\
             r2 t(@N, Z) :- m(@N, Y), Z := Y * 2.",
        )
        .unwrap()
        .build()
        .unwrap()
}

/// A random schedule of inserts and deletes, replayed into a graph.
fn run_schedule(ops: &[(bool, bool, i64, u64)]) -> (ProvGraph, u64) {
    // (is_delete, is_k_table, value, due)
    let mut eng = Engine::new(program(), GraphRecorder::new());
    let n = NodeId::new("n");
    for &(is_delete, is_k, v, due) in ops {
        let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
        if is_delete && is_k {
            eng.schedule_delete(due, n.clone(), t).unwrap();
        } else {
            eng.schedule_insert(due, n.clone(), t).unwrap();
        }
    }
    eng.run().unwrap();
    let now = eng.now();
    (eng.into_sink().finish(), now)
}

fn arb_ops() -> impl Strategy<Value = Vec<(bool, bool, i64, u64)>> {
    proptest::collection::vec(
        (any::<bool>(), any::<bool>(), -3i64..3, 0u64..200),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vertex-type structure: EXIST -> APPEAR -> (INSERT|DERIVE), DERIVE
    /// children are EXISTs, DISAPPEAR children are negative vertexes.
    #[test]
    fn vertex_children_follow_the_grammar(ops in arb_ops()) {
        let (g, _) = run_schedule(&ops);
        for v in g.vertices() {
            match &v.kind {
                VertexKind::Exist { .. } => {
                    prop_assert_eq!(v.children.len(), 1);
                    prop_assert!(matches!(g.vertex(v.children[0]).kind, VertexKind::Appear));
                }
                VertexKind::Appear => {
                    prop_assert_eq!(v.children.len(), 1);
                    let ok = matches!(
                        g.vertex(v.children[0]).kind,
                        VertexKind::Insert | VertexKind::Derive { .. }
                    );
                    prop_assert!(ok);
                }
                VertexKind::Derive { .. } => {
                    for &c in &v.children {
                        let ok = matches!(g.vertex(c).kind, VertexKind::Exist { .. });
                        prop_assert!(ok);
                    }
                }
                VertexKind::Disappear => {
                    for &c in &v.children {
                        let ok = matches!(
                            g.vertex(c).kind,
                            VertexKind::Delete | VertexKind::Underive { .. }
                        );
                        prop_assert!(ok);
                    }
                }
                VertexKind::Insert | VertexKind::Delete | VertexKind::Underive { .. } => {
                    prop_assert!(v.children.is_empty());
                }
            }
        }
    }

    /// Episodes of one tuple never overlap and are ordered in time; EXIST
    /// intervals agree with the episode records.
    #[test]
    fn episodes_are_disjoint_and_ordered(ops in arb_ops()) {
        let (g, _) = run_schedule(&ops);
        // Collect all trefs seen in the graph.
        let mut seen = std::collections::BTreeSet::new();
        for v in g.vertices() {
            seen.insert(TupleRef::new(v.node.clone(), v.tuple.clone()));
        }
        for tref in seen {
            let eps = g.episodes(&tref);
            for w in eps.windows(2) {
                let end = w[0].end.expect("only the last episode may be open");
                prop_assert!(end <= w[1].start);
            }
            for ep in eps {
                if let Some(end) = ep.end {
                    prop_assert!(ep.start <= end);
                }
                match &g.vertex(ep.exist).kind {
                    VertexKind::Exist { end } => prop_assert_eq!(*end, ep.end),
                    other => prop_assert!(false, "episode.exist is {other:?}"),
                }
            }
        }
    }

    /// Every derived tuple alive at the end has an extractable tree whose
    /// root matches the query and whose leaves are all INSERT vertexes.
    #[test]
    fn live_tuples_have_well_formed_trees(ops in arb_ops()) {
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = NodeId::new("n");
        for &(is_delete, is_k, v, due) in &ops {
            let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
            if is_delete && is_k {
                eng.schedule_delete(due, n.clone(), t).unwrap();
            } else {
                eng.schedule_insert(due, n.clone(), t).unwrap();
            }
        }
        eng.run().unwrap();
        let now = eng.now();
        let live: Vec<TupleRef> = eng
            .nodes()
            .flat_map(|(node, st)| {
                st.table(&Sym::new("t"))
                    .map(|(t, _)| TupleRef::new(node.clone(), t.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let g = eng.into_sink().finish();
        for tref in live {
            let tree = extract_tree(&g, &tref, now);
            prop_assert!(tree.is_some(), "live tuple {tref} has no tree");
            let tree = tree.unwrap();
            prop_assert_eq!(&tree.root().tuple, &tref.tuple);
            for (_, leaf) in tree.leaves() {
                prop_assert!(
                    matches!(leaf.kind, VertexKind::Insert),
                    "leaf {:?} is not an INSERT",
                    leaf.kind
                );
            }
        }
    }
}
