//! Randomized tests: structural invariants of the temporal provenance
//! graph hold under arbitrary insertion/deletion schedules. Schedules are
//! generated with the in-repo deterministic generator (offline build — no
//! property-testing framework).

use std::sync::Arc;

use dp_ndlog::{Engine, Program};
use dp_provenance::{extract_tree, GraphRecorder, ProvGraph, VertexKind};
use dp_types::{tuple, DetRng, FieldType, NodeId, Schema, SchemaRegistry, Sym, TableKind, TupleRef};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("e", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("k", TableKind::MutableBase, [("v", FieldType::Int)]));
    reg.declare(Schema::new("m", TableKind::Derived, [("y", FieldType::Int)]));
    reg.declare(Schema::new("t", TableKind::Derived, [("y", FieldType::Int)]));
    Program::builder(reg)
        .rules_text(
            "r1 m(@N, Y) :- e(@N, X), k(@N, V), Y := X + V.\n\
             r2 t(@N, Z) :- m(@N, Y), Z := Y * 2.",
        )
        .unwrap()
        .build()
        .unwrap()
}

/// One random op: (is_delete, is_k_table, value, due).
fn arb_ops(rng: &mut DetRng) -> Vec<(bool, bool, i64, u64)> {
    (0..rng.gen_range_usize(1, 30))
        .map(|_| {
            (
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
                rng.gen_range_i64(-3, 3),
                rng.gen_range_u64(0, 200),
            )
        })
        .collect()
}

/// A random schedule of inserts and deletes, replayed into a graph.
fn run_schedule(ops: &[(bool, bool, i64, u64)]) -> (ProvGraph, u64) {
    let mut eng = Engine::new(program(), GraphRecorder::new());
    let n = NodeId::new("n");
    for &(is_delete, is_k, v, due) in ops {
        let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
        if is_delete && is_k {
            eng.schedule_delete(due, n.clone(), t).unwrap();
        } else {
            eng.schedule_insert(due, n.clone(), t).unwrap();
        }
    }
    eng.run().unwrap();
    let now = eng.now();
    (eng.into_sink().finish(), now)
}

/// Vertex-type structure: EXIST -> APPEAR -> (INSERT|DERIVE), DERIVE
/// children are EXISTs, DISAPPEAR children are negative vertexes.
#[test]
fn vertex_children_follow_the_grammar() {
    let mut rng = DetRng::seed_from_u64(0x6A4F_0001);
    for _ in 0..48 {
        let ops = arb_ops(&mut rng);
        let (g, _) = run_schedule(&ops);
        for v in g.vertices() {
            match &v.kind {
                VertexKind::Exist { .. } => {
                    assert_eq!(v.children.len(), 1);
                    assert!(matches!(g.vertex(v.children[0]).kind, VertexKind::Appear));
                }
                VertexKind::Appear => {
                    assert_eq!(v.children.len(), 1);
                    assert!(matches!(
                        g.vertex(v.children[0]).kind,
                        VertexKind::Insert | VertexKind::Derive { .. }
                    ));
                }
                VertexKind::Derive { .. } => {
                    for &c in &v.children {
                        assert!(matches!(g.vertex(c).kind, VertexKind::Exist { .. }));
                    }
                }
                VertexKind::Disappear => {
                    for &c in &v.children {
                        assert!(matches!(
                            g.vertex(c).kind,
                            VertexKind::Delete | VertexKind::Underive { .. }
                        ));
                    }
                }
                VertexKind::Insert | VertexKind::Delete | VertexKind::Underive { .. } => {
                    assert!(v.children.is_empty());
                }
            }
        }
    }
}

/// Episodes of one tuple never overlap and are ordered in time; EXIST
/// intervals agree with the episode records.
#[test]
fn episodes_are_disjoint_and_ordered() {
    let mut rng = DetRng::seed_from_u64(0x6A4F_0002);
    for _ in 0..48 {
        let ops = arb_ops(&mut rng);
        let (g, _) = run_schedule(&ops);
        // Collect all trefs seen in the graph.
        let mut seen = std::collections::BTreeSet::new();
        for v in g.vertices() {
            seen.insert(TupleRef::new(v.node.clone(), v.tuple.clone()));
        }
        for tref in seen {
            let eps = g.episodes(&tref);
            for w in eps.windows(2) {
                let end = w[0].end.expect("only the last episode may be open");
                assert!(end <= w[1].start);
            }
            for ep in eps {
                if let Some(end) = ep.end {
                    assert!(ep.start <= end);
                }
                match &g.vertex(ep.exist).kind {
                    VertexKind::Exist { end } => assert_eq!(*end, ep.end),
                    other => panic!("episode.exist is {other:?}"),
                }
            }
        }
    }
}

/// Every derived tuple alive at the end has an extractable tree whose root
/// matches the query and whose leaves are all INSERT vertexes.
#[test]
fn live_tuples_have_well_formed_trees() {
    let mut rng = DetRng::seed_from_u64(0x6A4F_0003);
    for _ in 0..48 {
        let ops = arb_ops(&mut rng);
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = NodeId::new("n");
        for &(is_delete, is_k, v, due) in &ops {
            let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
            if is_delete && is_k {
                eng.schedule_delete(due, n.clone(), t).unwrap();
            } else {
                eng.schedule_insert(due, n.clone(), t).unwrap();
            }
        }
        eng.run().unwrap();
        let now = eng.now();
        let live: Vec<TupleRef> = eng
            .nodes()
            .flat_map(|(node, st)| {
                st.table(&Sym::new("t"))
                    .map(|(t, _)| TupleRef::new(node.clone(), t.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let g = eng.into_sink().finish();
        for tref in live {
            let tree = extract_tree(&g, &tref, now);
            assert!(tree.is_some(), "live tuple {tref} has no tree");
            let tree = tree.unwrap();
            assert_eq!(tree.root().tuple, tref.tuple);
            for (_, leaf) in tree.leaves() {
                assert!(
                    matches!(leaf.kind, VertexKind::Insert),
                    "leaf {:?} is not an INSERT",
                    leaf.kind
                );
            }
        }
    }
}
