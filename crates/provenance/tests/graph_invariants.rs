//! Randomized tests: structural invariants of the temporal provenance
//! graph hold under arbitrary insertion/deletion schedules. Schedules are
//! generated with the in-repo deterministic generator (offline build — no
//! property-testing framework).

use std::sync::Arc;

use dp_ndlog::{Engine, Program};
use dp_provenance::{
    extract_tree, well_formedness_violations, GraphRecorder, ProvGraph, VertexKind,
};
use dp_types::{tuple, DetRng, FieldType, NodeId, Schema, SchemaRegistry, Sym, TableKind, TupleRef};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("e", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("k", TableKind::MutableBase, [("v", FieldType::Int)]));
    reg.declare(Schema::new("m", TableKind::Derived, [("y", FieldType::Int)]));
    reg.declare(Schema::new("t", TableKind::Derived, [("y", FieldType::Int)]));
    Program::builder(reg)
        .rules_text(
            "r1 m(@N, Y) :- e(@N, X), k(@N, V), Y := X + V.\n\
             r2 t(@N, Z) :- m(@N, Y), Z := Y * 2.",
        )
        .unwrap()
        .build()
        .unwrap()
}

/// One random op: (is_delete, is_k_table, value, due).
fn arb_ops(rng: &mut DetRng) -> Vec<(bool, bool, i64, u64)> {
    (0..rng.gen_range_usize(1, 30))
        .map(|_| {
            (
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
                rng.gen_range_i64(-3, 3),
                rng.gen_range_u64(0, 200),
            )
        })
        .collect()
}

/// A random schedule of inserts and deletes, replayed into a graph.
fn run_schedule(ops: &[(bool, bool, i64, u64)]) -> (ProvGraph, u64) {
    let mut eng = Engine::new(program(), GraphRecorder::new());
    let n = NodeId::new("n");
    for &(is_delete, is_k, v, due) in ops {
        let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
        if is_delete && is_k {
            eng.schedule_delete(due, n.clone(), t).unwrap();
        } else {
            eng.schedule_insert(due, n.clone(), t).unwrap();
        }
    }
    eng.run().unwrap();
    let now = eng.now();
    (eng.into_sink().finish(), now)
}

/// Vertex-type grammar and episode ordering, via the exported checker
/// (`dp_provenance::well_formedness_violations`) that the simulation
/// harness also runs against every generated scenario. One seed per
/// former in-test loop so the covered schedules are unchanged.
#[test]
fn random_graphs_are_well_formed() {
    let mut nonempty = 0usize;
    for seed in [0x6A4F_0001u64, 0x6A4F_0002] {
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..48 {
            let ops = arb_ops(&mut rng);
            let (g, _) = run_schedule(&ops);
            nonempty += usize::from(!g.is_empty());
            let violations = well_formedness_violations(&g);
            assert!(
                violations.is_empty(),
                "schedule {ops:?}:\n{}",
                violations.join("\n")
            );
        }
    }
    assert!(nonempty > 48, "generator built mostly empty graphs");
}

/// Every derived tuple alive at the end has an extractable tree whose root
/// matches the query and whose leaves are all INSERT vertexes.
#[test]
fn live_tuples_have_well_formed_trees() {
    let mut rng = DetRng::seed_from_u64(0x6A4F_0003);
    for _ in 0..48 {
        let ops = arb_ops(&mut rng);
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = NodeId::new("n");
        for &(is_delete, is_k, v, due) in &ops {
            let t = if is_k { tuple!("k", v) } else { tuple!("e", v) };
            if is_delete && is_k {
                eng.schedule_delete(due, n.clone(), t).unwrap();
            } else {
                eng.schedule_insert(due, n.clone(), t).unwrap();
            }
        }
        eng.run().unwrap();
        let now = eng.now();
        let live: Vec<TupleRef> = eng
            .nodes()
            .flat_map(|(node, st)| {
                st.table(&Sym::new("t"))
                    .map(|(t, _)| TupleRef::new(node.clone(), t.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let g = eng.into_sink().finish();
        for tref in live {
            let tree = extract_tree(&g, &tref, now);
            assert!(tree.is_some(), "live tuple {tref} has no tree");
            let tree = tree.unwrap();
            assert_eq!(tree.root().tuple, tref.tuple);
            for (_, leaf) in tree.leaves() {
                assert!(
                    matches!(leaf.kind, VertexKind::Insert),
                    "leaf {:?} is not an INSERT",
                    leaf.kind
                );
            }
        }
    }
}

/// Node-sharded evaluation records the same provenance graph as the
/// serial engine, vertex for vertex: same kinds, nodes, tuples, times,
/// child lists, and vertex numbering. The schedule spans several nodes
/// and forwards derived tuples across them, so at 2 and 4 shards the
/// recorder is fed from per-shard buffers merged at batch boundaries —
/// and none of that may be visible in the finished graph.
#[test]
fn sharded_recording_builds_an_identical_graph() {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("obs", TableKind::MutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("nbr", TableKind::MutableBase, [("next", FieldType::Str)]));
    reg.declare(Schema::new("rep", TableKind::Derived, [("v", FieldType::Int)]));
    let program: Arc<Program> = Program::builder(reg)
        .rules_text("fwd rep(@M, X) :- obs(@N, X), nbr(@N, M).")
        .unwrap()
        .build()
        .unwrap();
    let nodes: Vec<NodeId> = (0..5).map(|i| NodeId::new(format!("s{i}").as_str())).collect();
    let render = |g: &ProvGraph| -> String {
        g.vertices()
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{i} {v} <- {:?}\n", v.children))
            .collect()
    };
    let run = |shards: usize| -> (String, dp_provenance::GraphStats) {
        let mut eng = Engine::new(Arc::clone(&program), GraphRecorder::new());
        eng.set_shards(shards);
        let mut rng = DetRng::seed_from_u64(0x6A4F_0004);
        for (i, n) in nodes.iter().enumerate() {
            let next = &nodes[(i + 1) % nodes.len()];
            eng.schedule_insert(0, n.clone(), tuple!("nbr", next.as_str())).unwrap();
        }
        for _ in 0..60 {
            let n = &nodes[rng.gen_range_usize(0, nodes.len())];
            let x = rng.gen_range_i64(0, 4);
            let due = rng.gen_range_u64(1, 6);
            if rng.gen_bool(0.25) {
                eng.schedule_delete(due, n.clone(), tuple!("obs", x)).unwrap();
            } else {
                eng.schedule_insert(due, n.clone(), tuple!("obs", x)).unwrap();
            }
        }
        eng.run().unwrap();
        let g = eng.into_sink().finish();
        (render(&g), g.stats())
    };
    let (serial, serial_stats) = run(1);
    assert!(serial_stats.total() > 100, "schedule too quiet: {serial_stats:?}");
    for shards in [2usize, 4] {
        let (sharded, stats) = run(shards);
        assert_eq!(serial_stats, stats, "graph stats diverge at {shards} shards");
        assert_eq!(serial, sharded, "graph diverges at {shards} shards");
    }
}
