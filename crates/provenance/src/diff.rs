//! Baseline diagnostics: the Y!-style whole-tree query and the naïve
//! "plain tree diff" strawman of Section 2.5.
//!
//! Both baselines exist so the evaluation (Table 1) can compare DiffProv
//! against what an operator gets today: either the full provenance tree of
//! the bad event (hundreds of vertexes), or a vertex-set diff of the good
//! and bad trees — which, due to the butterfly effect the paper describes,
//! is often *larger* than either tree.

use std::collections::BTreeMap;

use dp_types::{NodeId, Sym, Tuple};

use crate::graph::VertexKind;
use crate::tree::ProvTree;

/// The signature under which the plain diff compares vertexes: everything
/// except the timestamp. Masking timestamps is the minimal equivalence the
/// paper concedes to the strawman ("the trees will inevitably differ in
/// some details, such as timestamps") — without it, the diff would contain
/// every vertex of both trees.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VertexSig {
    /// Vertex kind tag (EXIST, DERIVE, ...).
    pub tag: &'static str,
    /// Rule name for DERIVE/UNDERIVE vertexes.
    pub rule: Option<Sym>,
    /// Node the tuple lives on.
    pub node: NodeId,
    /// The tuple.
    pub tuple: Tuple,
}

fn signature(kind: &VertexKind, node: &NodeId, tuple: &Tuple) -> VertexSig {
    let rule = match kind {
        VertexKind::Derive { rule, .. } | VertexKind::Underive { rule } => Some(rule.clone()),
        _ => None,
    };
    VertexSig {
        tag: kind.tag(),
        rule,
        node: node.clone(),
        tuple: tuple.clone(),
    }
}

fn multiset(tree: &ProvTree) -> BTreeMap<VertexSig, usize> {
    let mut out = BTreeMap::new();
    for n in tree.nodes() {
        *out.entry(signature(&n.kind, &n.node, &n.tuple)).or_insert(0) += 1;
    }
    out
}

/// The result of a plain (naïve) tree diff.
#[derive(Clone, Debug, Default)]
pub struct PlainDiff {
    /// Vertexes (with multiplicity) only in the good tree.
    pub only_good: Vec<VertexSig>,
    /// Vertexes (with multiplicity) only in the bad tree.
    pub only_bad: Vec<VertexSig>,
}

impl PlainDiff {
    /// Total number of differing vertexes — the "Plain tree diff" row of
    /// Table 1.
    pub fn len(&self) -> usize {
        self.only_good.len() + self.only_bad.len()
    }

    /// True when the trees are identical modulo timestamps.
    pub fn is_empty(&self) -> bool {
        self.only_good.is_empty() && self.only_bad.is_empty()
    }
}

/// Computes the multiset symmetric difference of two trees' vertexes,
/// compared by [`VertexSig`] (i.e. ignoring timestamps only).
pub fn plain_tree_diff(good: &ProvTree, bad: &ProvTree) -> PlainDiff {
    let g = multiset(good);
    let b = multiset(bad);
    let mut out = PlainDiff::default();
    for (sig, &gc) in &g {
        let bc = b.get(sig).copied().unwrap_or(0);
        for _ in bc..gc {
            out.only_good.push(sig.clone());
        }
    }
    for (sig, &bc) in &b {
        let gc = g.get(sig).copied().unwrap_or(0);
        for _ in gc..bc {
            out.only_bad.push(sig.clone());
        }
    }
    out
}

/// The Y!-style baseline: a classical provenance query returns the whole
/// tree; its "answer size" is the number of vertexes the operator must
/// inspect. (Y! \[30\] supports negative provenance too; for the positive
/// queries in Table 1 the answer is the full tree.)
pub fn ybang_answer_size(tree: &ProvTree) -> usize {
    tree.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphRecorder;
    use crate::tree::extract_tree;
    use dp_ndlog::{Engine, Program};
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind, TupleRef};
    use std::sync::Arc;

    fn program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new("in", TableKind::ImmutableBase, [("x", FieldType::Int)]));
        reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
        reg.declare(Schema::new("out", TableKind::Derived, [("x", FieldType::Int)]));
        Program::builder(reg)
            .rules_text("r out(@N, Y) :- in(@N, X), cfg(@N, K), Y := X + K.")
            .unwrap()
            .build()
            .unwrap()
    }

    fn run(cfg: i64, input: i64) -> (ProvTree, i64) {
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = dp_types::NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("cfg", cfg)).unwrap();
        eng.schedule_insert(5, n.clone(), tuple!("in", input)).unwrap();
        eng.run().unwrap();
        let now = eng.now();
        let g = eng.into_sink().finish();
        let out_val = input + cfg;
        let tree = extract_tree(&g, &TupleRef::new(n, tuple!("out", out_val)), now).unwrap();
        (tree, out_val)
    }

    #[test]
    fn identical_runs_diff_to_nothing() {
        let (a, _) = run(10, 1);
        let (b, _) = run(10, 1);
        let d = plain_tree_diff(&a, &b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn config_change_shows_in_diff() {
        let (good, _) = run(10, 1);
        let (bad, _) = run(20, 1);
        let d = plain_tree_diff(&good, &bad);
        // cfg differs (3 vertexes each side) and the derived out differs
        // (EXIST/APPEAR/DERIVE each side): diff = 12, larger than the
        // 3 vertexes actually at fault — the butterfly effect in miniature.
        assert_eq!(d.len(), 12);
        assert!(d.only_good.iter().any(|s| s.tuple == tuple!("cfg", 10)));
        assert!(d.only_bad.iter().any(|s| s.tuple == tuple!("cfg", 20)));
    }

    #[test]
    fn diff_ignores_timestamps() {
        // Same logical content, different times.
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = dp_types::NodeId::new("n1");
        eng.schedule_insert(1000, n.clone(), tuple!("cfg", 10)).unwrap();
        eng.schedule_insert(2000, n.clone(), tuple!("in", 1)).unwrap();
        eng.run().unwrap();
        let now = eng.now();
        let g = eng.into_sink().finish();
        let late = extract_tree(&g, &TupleRef::new(n, tuple!("out", 11)), now).unwrap();
        let (early, _) = run(10, 1);
        assert!(plain_tree_diff(&early, &late).is_empty());
    }

    #[test]
    fn ybang_answer_is_whole_tree() {
        let (tree, _) = run(10, 1);
        assert_eq!(ybang_answer_size(&tree), tree.len());
        assert_eq!(tree.len(), 9); // out(3) + in(3) + cfg(3)
    }
}
