//! Provenance *trees*: the projection of the graph rooted at one event.
//!
//! "To find the provenance of a specific event e, we can simply locate e's
//! vertex in the graph and then project out the tree that is rooted at that
//! vertex" (Section 2.1). Because the projection duplicates shared
//! subtrees, tree vertex counts (the numbers reported in Table 1) exceed
//! the number of distinct tuples involved.

use std::sync::Arc;

use dp_types::{LogicalTime, NodeId, Sym, Tuple, TupleRef};

use crate::graph::{ProvGraph, VertexId, VertexKind};

/// Index of a node within a [`ProvTree`].
pub type TreeIdx = usize;

/// One vertex of an extracted provenance tree.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// The vertex kind (same taxonomy as the graph).
    pub kind: VertexKind,
    /// Node the tuple lives on.
    pub node: NodeId,
    /// The tuple (shared with the source graph's vertices).
    pub tuple: Arc<Tuple>,
    /// Event time / interval start.
    pub time: LogicalTime,
    /// Parent in the tree (`None` for the root).
    pub parent: Option<TreeIdx>,
    /// Children (direct causes).
    pub children: Vec<TreeIdx>,
    /// The graph vertex this tree node was projected from.
    pub origin: VertexId,
}

/// A provenance tree with the queried event at index 0.
#[derive(Clone, Debug)]
pub struct ProvTree {
    nodes: Vec<TreeNode>,
}

impl ProvTree {
    /// The root index (always 0).
    pub const ROOT: TreeIdx = 0;

    /// An empty tree for programmatic construction. Used by the annotation
    /// backend's reconstructor, which builds trees without a source graph.
    pub(crate) fn empty() -> ProvTree {
        ProvTree { nodes: Vec::new() }
    }

    /// Mutable access to the node vector, for tree builders in this crate.
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<TreeNode> {
        &mut self.nodes
    }

    /// All nodes; index with [`TreeIdx`].
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// A node by index.
    pub fn node(&self, idx: TreeIdx) -> &TreeNode {
        &self.nodes[idx]
    }

    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.nodes[Self::ROOT]
    }

    /// Number of vertexes in the tree — the metric of Table 1.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a tree with no nodes (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaves of the tree (base events and configuration state).
    pub fn leaves(&self) -> impl Iterator<Item = (TreeIdx, &TreeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.children.is_empty())
    }

    /// Pretty-prints the tree, one vertex per line, indented by depth.
    /// Intended for operator inspection and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(Self::ROOT, 0, &mut out);
        out
    }

    fn render_into(&self, idx: TreeIdx, depth: usize, out: &mut String) {
        let n = &self.nodes[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = match &n.kind {
            VertexKind::Derive { rule, .. } => format!("DERIVE[{rule}]"),
            VertexKind::Underive { rule } => format!("UNDERIVE[{rule}]"),
            other => other.tag().to_string(),
        };
        out.push_str(&format!("{label} {}@{} t={}\n", n.tuple, n.node, n.time));
        for &c in &n.children {
            self.render_into(c, depth + 1, out);
        }
    }
}

/// Extracts the provenance tree of `root` as of time `at`.
///
/// Returns `None` when the tuple has no episode covering `at`. Extraction
/// is purely a read of the graph; it materializes the tree by walking
/// EXIST → APPEAR → (INSERT | DERIVE) → body EXISTs recursively. Each
/// DERIVE's children are resolved against the episodes that were open at
/// the derivation time, which is what makes extraction *temporal*: asking
/// about a past event walks the past state.
pub fn extract_tree(graph: &ProvGraph, root: &TupleRef, at: LogicalTime) -> Option<ProvTree> {
    let episode = graph.episode_at(root, at)?;
    let mut tree = ProvTree { nodes: Vec::new() };
    project(graph, episode.exist, None, &mut tree);
    Some(tree)
}

/// Like [`extract_tree`], but accepts tuples that have since disappeared:
/// uses the last episode starting at or before `at` (needed when the
/// reference event lies in the past, as in scenario SDN3).
pub fn extract_tree_latest(graph: &ProvGraph, root: &TupleRef, at: LogicalTime) -> Option<ProvTree> {
    let episode = graph.last_episode_starting_by(root, at)?;
    let mut tree = ProvTree { nodes: Vec::new() };
    project(graph, episode.exist, None, &mut tree);
    Some(tree)
}

fn project(graph: &ProvGraph, vertex: VertexId, parent: Option<TreeIdx>, tree: &mut ProvTree) -> TreeIdx {
    let v = graph.vertex(vertex);
    let idx = tree.nodes.len();
    tree.nodes.push(TreeNode {
        kind: v.kind.clone(),
        node: v.node.clone(),
        tuple: v.tuple.clone(),
        time: v.time,
        parent,
        children: Vec::new(),
        origin: vertex,
    });
    let children: Vec<VertexId> = v.children.clone();
    for c in children {
        let child_idx = project(graph, c, Some(idx), tree);
        tree.nodes[idx].children.push(child_idx);
    }
    idx
}

/// A tuple-granularity view of a provenance tree.
///
/// DiffProv's algorithm (Section 4) reasons about *tuples* and the rules
/// connecting them; the EXIST/APPEAR/DERIVE bookkeeping chain is collapsed
/// into one [`TupleNode`] per tuple occurrence.
#[derive(Clone, Debug)]
pub struct TupleTree {
    nodes: Vec<TupleNode>,
}

/// One tuple occurrence in a [`TupleTree`].
#[derive(Clone, Debug)]
pub struct TupleNode {
    /// The located tuple.
    pub tref: TupleRef,
    /// When this occurrence appeared.
    pub appear_time: LogicalTime,
    /// The rule that derived it, or `None` for a base tuple.
    pub rule: Option<Sym>,
    /// For derived tuples, the index (within `children`) of the body tuple
    /// whose appearance triggered the derivation.
    pub trigger: Option<usize>,
    /// Parent occurrence.
    pub parent: Option<TreeIdx>,
    /// Child occurrences (the body tuples of the derivation).
    pub children: Vec<TreeIdx>,
}

impl TupleTree {
    /// The root index (always 0).
    pub const ROOT: TreeIdx = 0;

    /// All nodes.
    pub fn nodes(&self) -> &[TupleNode] {
        &self.nodes
    }

    /// A node by index.
    pub fn node(&self, idx: TreeIdx) -> &TupleNode {
        &self.nodes[idx]
    }

    /// The root node.
    pub fn root(&self) -> &TupleNode {
        &self.nodes[Self::ROOT]
    }

    /// Number of tuple occurrences.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false for extracted views.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Follows the trigger chain from the root down to the seed leaf —
    /// the paper's FINDSEED (Section 4.2): at every derived tuple, descend
    /// into the child that appeared last (the trigger); stop at a base
    /// tuple (an INSERT leaf).
    pub fn seed(&self) -> TreeIdx {
        let mut idx = Self::ROOT;
        loop {
            let n = &self.nodes[idx];
            match n.trigger {
                Some(t) if !n.children.is_empty() => {
                    idx = n.children[t.min(n.children.len() - 1)];
                }
                _ => return idx,
            }
        }
    }

    /// The chain of indexes from the seed back up to the root, inclusive.
    pub fn trigger_chain(&self) -> Vec<TreeIdx> {
        let mut chain = vec![self.seed()];
        while let Some(p) = self.nodes[*chain.last().expect("nonempty")].parent {
            chain.push(p);
        }
        chain
    }
}

/// Collapses a [`ProvTree`] into its tuple-granularity view.
pub fn tuple_view(tree: &ProvTree) -> TupleTree {
    let mut out = TupleTree { nodes: Vec::new() };
    collapse(tree, ProvTree::ROOT, None, &mut out);
    out
}

fn collapse(tree: &ProvTree, exist_idx: TreeIdx, parent: Option<TreeIdx>, out: &mut TupleTree) -> TreeIdx {
    // exist_idx points at an EXIST vertex; its child is the APPEAR, whose
    // child is the INSERT or DERIVE.
    let exist = tree.node(exist_idx);
    let appear_idx = exist.children.first().copied();
    let (appear_time, cause_idx) = match appear_idx {
        Some(a) => {
            let appear = tree.node(a);
            (appear.time, appear.children.first().copied())
        }
        None => (exist.time, None),
    };
    let (rule, trigger, body) = match cause_idx.map(|c| tree.node(c)) {
        Some(cause) => match &cause.kind {
            VertexKind::Derive { rule, trigger } => {
                (Some(rule.clone()), Some(*trigger), cause.children.clone())
            }
            _ => (None, None, Vec::new()),
        },
        None => (None, None, Vec::new()),
    };
    let idx = out.nodes.len();
    out.nodes.push(TupleNode {
        tref: TupleRef::new(exist.node.clone(), exist.tuple.clone()),
        appear_time,
        rule,
        trigger,
        parent,
        children: Vec::new(),
    });
    for b in body {
        let child = collapse(tree, b, Some(idx), out);
        out.nodes[idx].children.push(child);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphRecorder;
    use dp_ndlog::{Engine, Program};
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind};
    use std::sync::Arc;

    /// A two-hop chain: base -> mid -> top, plus a config dependency.
    fn chain_program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new("base", TableKind::ImmutableBase, [("x", FieldType::Int)]));
        reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
        reg.declare(Schema::new("mid", TableKind::Derived, [("x", FieldType::Int)]));
        reg.declare(Schema::new("top", TableKind::Derived, [("x", FieldType::Int)]));
        Program::builder(reg)
            .rules_text(
                "r1 mid(@N, X1) :- base(@N, X), cfg(@N, K), X1 := X + K.\n\
                 r2 top(@N, X2) :- mid(@N, X), X2 := X * 2.",
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn run_chain() -> (ProvGraph, NodeId, LogicalTime) {
        let mut eng = Engine::new(chain_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("cfg", 10)).unwrap();
        eng.schedule_insert(5, n.clone(), tuple!("base", 1)).unwrap();
        eng.run().unwrap();
        let now = eng.now();
        (eng.into_sink().finish(), n, now)
    }

    #[test]
    fn extraction_projects_full_chain() {
        let (g, n, now) = run_chain();
        let top = TupleRef::new(n.clone(), tuple!("top", 22));
        let tree = extract_tree(&g, &top, now).expect("top exists");
        // top: EXIST+APPEAR+DERIVE, mid: EXIST+APPEAR+DERIVE,
        // base: EXIST+APPEAR+INSERT, cfg: EXIST+APPEAR+INSERT = 12 vertexes.
        assert_eq!(tree.len(), 12);
        assert_eq!(tree.root().tuple, tuple!("top", 22));
        let rendered = tree.render();
        assert!(rendered.contains("DERIVE[r2]"), "{rendered}");
        assert!(rendered.contains("INSERT cfg(10)"), "{rendered}");
    }

    #[test]
    fn extraction_respects_time() {
        let (g, n, _) = run_chain();
        let top = TupleRef::new(n, tuple!("top", 22));
        assert!(extract_tree(&g, &top, 0).is_none());
    }

    #[test]
    fn missing_tuple_yields_none() {
        let (g, n, now) = run_chain();
        let nope = TupleRef::new(n, tuple!("top", 99));
        assert!(extract_tree(&g, &nope, now).is_none());
    }

    #[test]
    fn tuple_view_collapses_chains() {
        let (g, n, now) = run_chain();
        let top = TupleRef::new(n.clone(), tuple!("top", 22));
        let tree = extract_tree(&g, &top, now).unwrap();
        let view = tuple_view(&tree);
        assert_eq!(view.len(), 4); // top, mid, base, cfg
        assert_eq!(view.root().tref.tuple, tuple!("top", 22));
        assert_eq!(view.root().rule, Some(dp_types::Sym::new("r2")));
        let mid = view.node(view.root().children[0]);
        assert_eq!(mid.tref.tuple, tuple!("mid", 11));
        assert_eq!(mid.children.len(), 2);
    }

    #[test]
    fn seed_follows_trigger_chain_to_stimulus() {
        // cfg was inserted first, base last; the seed must be base — the
        // external stimulus — not the config tuple.
        let (g, n, now) = run_chain();
        let top = TupleRef::new(n.clone(), tuple!("top", 22));
        let tree = extract_tree(&g, &top, now).unwrap();
        let view = tuple_view(&tree);
        let seed = view.node(view.seed());
        assert_eq!(seed.tref.tuple, tuple!("base", 1));
        let chain = view.trigger_chain();
        assert_eq!(chain.len(), 3); // base -> mid -> top
        assert_eq!(view.node(*chain.last().unwrap()).tref.tuple, tuple!("top", 22));
    }

    #[test]
    fn past_reference_extraction_after_deletion() {
        let mut eng = Engine::new(chain_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("cfg", 10)).unwrap();
        eng.schedule_insert(5, n.clone(), tuple!("base", 1)).unwrap();
        eng.run().unwrap();
        let t_good = eng.now();
        eng.schedule_delete(t_good + 10, n.clone(), tuple!("cfg", 10)).unwrap();
        eng.run().unwrap();
        let t_after = eng.now();
        let g = eng.into_sink().finish();
        let top = TupleRef::new(n, tuple!("top", 22));
        // Gone now...
        assert!(extract_tree(&g, &top, t_after).is_none());
        // ...but the temporal graph still answers queries about the past.
        let tree = extract_tree_latest(&g, &top, t_after).expect("past episode");
        assert_eq!(tree.root().tuple, tuple!("top", 22));
        assert_eq!(tree.len(), 12);
    }
}
