//! Structural well-formedness checks for temporal provenance graphs.
//!
//! The temporal provenance graph has a strict vertex grammar (Section 3.2
//! of the paper): EXIST vertexes are justified by exactly one APPEAR,
//! every APPEAR by exactly one INSERT or DERIVE, DERIVE children are the
//! EXIST intervals of the body tuples, DISAPPEAR children are negative
//! events, and the leaf kinds carry no children at all. Episodes of one
//! tuple never overlap and march forward in time, and each episode's
//! EXIST vertex agrees with the episode record about the interval end.
//!
//! These rules used to live only inside the randomized test suite; the
//! simulation harness (`dp-sim`) checks them against every generated
//! scenario too, so they are exported here as a reusable checker. The
//! checker *collects* violations instead of panicking — a fuzzing driver
//! wants to report and shrink, not die on the first bad vertex.

use std::collections::BTreeSet;

use dp_types::TupleRef;

use crate::graph::{ProvGraph, VertexKind};

/// Checks every structural invariant of `g`, returning a human-readable
/// description of each violation (empty means the graph is well-formed).
pub fn well_formedness_violations(g: &ProvGraph) -> Vec<String> {
    let mut out = Vec::new();
    let len = g.len();
    for (i, v) in g.vertices().iter().enumerate() {
        for &c in &v.children {
            if c >= len {
                out.push(format!("vertex {i} ({v}) has out-of-range child {c}"));
            }
        }
        if v.children.iter().any(|&c| c >= len) {
            continue; // Child-kind checks below would index out of range.
        }
        match &v.kind {
            VertexKind::Exist { .. } => {
                if v.children.len() != 1 {
                    out.push(format!(
                        "EXIST vertex {i} ({v}) has {} children, expected 1",
                        v.children.len()
                    ));
                } else if !matches!(g.vertex(v.children[0]).kind, VertexKind::Appear) {
                    out.push(format!(
                        "EXIST vertex {i} ({v}) child is {}, expected APPEAR",
                        g.vertex(v.children[0])
                    ));
                }
            }
            VertexKind::Appear => {
                if v.children.len() != 1 {
                    out.push(format!(
                        "APPEAR vertex {i} ({v}) has {} children, expected 1",
                        v.children.len()
                    ));
                } else if !matches!(
                    g.vertex(v.children[0]).kind,
                    VertexKind::Insert | VertexKind::Derive { .. }
                ) {
                    out.push(format!(
                        "APPEAR vertex {i} ({v}) child is {}, expected INSERT or DERIVE",
                        g.vertex(v.children[0])
                    ));
                }
            }
            VertexKind::Derive { .. } => {
                for &c in &v.children {
                    if !matches!(g.vertex(c).kind, VertexKind::Exist { .. }) {
                        out.push(format!(
                            "DERIVE vertex {i} ({v}) child {} is not an EXIST",
                            g.vertex(c)
                        ));
                    }
                }
            }
            VertexKind::Disappear => {
                for &c in &v.children {
                    if !matches!(
                        g.vertex(c).kind,
                        VertexKind::Delete | VertexKind::Underive { .. }
                    ) {
                        out.push(format!(
                            "DISAPPEAR vertex {i} ({v}) child {} is not DELETE/UNDERIVE",
                            g.vertex(c)
                        ));
                    }
                }
            }
            VertexKind::Insert | VertexKind::Delete | VertexKind::Underive { .. } => {
                if !v.children.is_empty() {
                    out.push(format!(
                        "leaf vertex {i} ({v}) has {} children, expected none",
                        v.children.len()
                    ));
                }
            }
        }
    }
    // Episode structure, per tuple reference seen anywhere in the graph.
    let mut seen = BTreeSet::new();
    for v in g.vertices() {
        seen.insert(TupleRef::new(v.node.clone(), v.tuple.as_ref().clone()));
    }
    for tref in seen {
        let eps = g.episodes(&tref);
        for w in eps.windows(2) {
            match w[0].end {
                Some(end) if end <= w[1].start => {}
                Some(end) => out.push(format!(
                    "episodes of {tref} overlap: [{}, {end}) then [{}, ..)",
                    w[0].start, w[1].start
                )),
                None => out.push(format!(
                    "non-final episode of {tref} starting at {} is open",
                    w[0].start
                )),
            }
        }
        for ep in eps {
            if let Some(end) = ep.end {
                if ep.start > end {
                    out.push(format!(
                        "episode of {tref} runs backwards: [{}, {end})",
                        ep.start
                    ));
                }
            }
            match &g.vertex(ep.exist).kind {
                VertexKind::Exist { end } => {
                    if *end != ep.end {
                        out.push(format!(
                            "episode of {tref} ends at {:?} but its EXIST vertex says {end:?}",
                            ep.end
                        ));
                    }
                }
                other => out.push(format!(
                    "episode of {tref} points at a {} vertex instead of an EXIST",
                    other.tag()
                )),
            }
        }
    }
    out
}

/// [`well_formedness_violations`], packaged as a `Result` for callers
/// that only want pass/fail with a joined message.
pub fn check_well_formed(g: &ProvGraph) -> Result<(), String> {
    let violations = well_formedness_violations(g);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}
