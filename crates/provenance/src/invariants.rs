//! Structural well-formedness checks for temporal provenance graphs.
//!
//! The temporal provenance graph has a strict vertex grammar (Section 3.2
//! of the paper): EXIST vertexes are justified by exactly one APPEAR,
//! every APPEAR by exactly one INSERT or DERIVE, DERIVE children are the
//! EXIST intervals of the body tuples, DISAPPEAR children are negative
//! events, and the leaf kinds carry no children at all. Episodes of one
//! tuple never overlap and march forward in time, and each episode's
//! EXIST vertex agrees with the episode record about the interval end.
//!
//! These rules used to live only inside the randomized test suite; the
//! simulation harness (`dp-sim`) checks them against every generated
//! scenario too, so they are exported here as a reusable checker. The
//! checker *collects* violations instead of panicking — a fuzzing driver
//! wants to report and shrink, not die on the first bad vertex.

use std::collections::BTreeSet;

use dp_types::TupleRef;

use crate::graph::{ProvGraph, VertexKind};
use crate::tree::ProvTree;

/// Checks every structural invariant of `g`, returning a human-readable
/// description of each violation (empty means the graph is well-formed).
pub fn well_formedness_violations(g: &ProvGraph) -> Vec<String> {
    let mut out = Vec::new();
    let len = g.len();
    for (i, v) in g.vertices().iter().enumerate() {
        for &c in &v.children {
            if c >= len {
                out.push(format!("vertex {i} ({v}) has out-of-range child {c}"));
            }
        }
        if v.children.iter().any(|&c| c >= len) {
            continue; // Child-kind checks below would index out of range.
        }
        match &v.kind {
            VertexKind::Exist { .. } => {
                if v.children.len() != 1 {
                    out.push(format!(
                        "EXIST vertex {i} ({v}) has {} children, expected 1",
                        v.children.len()
                    ));
                } else if !matches!(g.vertex(v.children[0]).kind, VertexKind::Appear) {
                    out.push(format!(
                        "EXIST vertex {i} ({v}) child is {}, expected APPEAR",
                        g.vertex(v.children[0])
                    ));
                }
            }
            VertexKind::Appear => {
                if v.children.len() != 1 {
                    out.push(format!(
                        "APPEAR vertex {i} ({v}) has {} children, expected 1",
                        v.children.len()
                    ));
                } else if !matches!(
                    g.vertex(v.children[0]).kind,
                    VertexKind::Insert | VertexKind::Derive { .. }
                ) {
                    out.push(format!(
                        "APPEAR vertex {i} ({v}) child is {}, expected INSERT or DERIVE",
                        g.vertex(v.children[0])
                    ));
                }
            }
            VertexKind::Derive { .. } => {
                for &c in &v.children {
                    if !matches!(g.vertex(c).kind, VertexKind::Exist { .. }) {
                        out.push(format!(
                            "DERIVE vertex {i} ({v}) child {} is not an EXIST",
                            g.vertex(c)
                        ));
                    }
                }
            }
            VertexKind::Disappear => {
                for &c in &v.children {
                    if !matches!(
                        g.vertex(c).kind,
                        VertexKind::Delete | VertexKind::Underive { .. }
                    ) {
                        out.push(format!(
                            "DISAPPEAR vertex {i} ({v}) child {} is not DELETE/UNDERIVE",
                            g.vertex(c)
                        ));
                    }
                }
            }
            VertexKind::Insert | VertexKind::Delete | VertexKind::Underive { .. } => {
                if !v.children.is_empty() {
                    out.push(format!(
                        "leaf vertex {i} ({v}) has {} children, expected none",
                        v.children.len()
                    ));
                }
            }
        }
    }
    // Episode structure, per tuple reference seen anywhere in the graph.
    let mut seen = BTreeSet::new();
    for v in g.vertices() {
        seen.insert(TupleRef::new(v.node.clone(), v.tuple.as_ref().clone()));
    }
    for tref in seen {
        let eps = g.episodes(&tref);
        for w in eps.windows(2) {
            match w[0].end {
                Some(end) if end <= w[1].start => {}
                Some(end) => out.push(format!(
                    "episodes of {tref} overlap: [{}, {end}) then [{}, ..)",
                    w[0].start, w[1].start
                )),
                None => out.push(format!(
                    "non-final episode of {tref} starting at {} is open",
                    w[0].start
                )),
            }
        }
        for ep in eps {
            if let Some(end) = ep.end {
                if ep.start > end {
                    out.push(format!(
                        "episode of {tref} runs backwards: [{}, {end})",
                        ep.start
                    ));
                }
            }
            match &g.vertex(ep.exist).kind {
                VertexKind::Exist { end } => {
                    if *end != ep.end {
                        out.push(format!(
                            "episode of {tref} ends at {:?} but its EXIST vertex says {end:?}",
                            ep.end
                        ));
                    }
                }
                other => out.push(format!(
                    "episode of {tref} points at a {} vertex instead of an EXIST",
                    other.tag()
                )),
            }
        }
    }
    out
}

/// Checks the structural invariants of an extracted or reconstructed
/// provenance *tree*: the same vertex grammar as the graph (EXIST → one
/// APPEAR → one INSERT or DERIVE, DERIVE children all EXISTs, leaves bare),
/// plus tree-specific rules — parent/child links mutually consistent, the
/// root parentless, every EXIST sharing its tuple and time with its APPEAR,
/// and each DERIVE's body EXIST intervals covering the derivation time.
/// Reconstructed trees (the annotation backend) must pass this checker
/// byte-for-byte as often as extracted ones do.
pub fn tree_well_formedness_violations(tree: &ProvTree) -> Vec<String> {
    let mut out = Vec::new();
    if tree.is_empty() {
        out.push("tree has no nodes".to_string());
        return out;
    }
    if tree.root().parent.is_some() {
        out.push("root node has a parent".to_string());
    }
    for (i, n) in tree.nodes().iter().enumerate() {
        for &c in &n.children {
            if c >= tree.len() {
                out.push(format!("node {i} has out-of-range child {c}"));
            } else if tree.node(c).parent != Some(i) {
                out.push(format!(
                    "node {i} lists child {c}, but that child's parent is {:?}",
                    tree.node(c).parent
                ));
            }
        }
        if n.children.iter().any(|&c| c >= tree.len()) {
            continue;
        }
        let label = format!("{} {}@{} t={}", n.kind.tag(), n.tuple, n.node, n.time);
        match &n.kind {
            VertexKind::Exist { end } => {
                if end.is_some_and(|e| e <= n.time) {
                    out.push(format!("{label}: EXIST interval ends at {end:?}, before it starts"));
                }
                if n.children.len() != 1 {
                    out.push(format!(
                        "{label}: EXIST has {} children, expected 1",
                        n.children.len()
                    ));
                } else {
                    let a = tree.node(n.children[0]);
                    if !matches!(a.kind, VertexKind::Appear) {
                        out.push(format!("{label}: EXIST child is {}, expected APPEAR", a.kind.tag()));
                    } else if a.tuple != n.tuple || a.node != n.node || a.time != n.time {
                        out.push(format!(
                            "{label}: APPEAR child disagrees ({} {}@{} t={})",
                            a.kind.tag(),
                            a.tuple,
                            a.node,
                            a.time
                        ));
                    }
                }
            }
            VertexKind::Appear => {
                if n.children.len() != 1 {
                    out.push(format!(
                        "{label}: APPEAR has {} children, expected 1",
                        n.children.len()
                    ));
                } else {
                    let c = tree.node(n.children[0]);
                    if !matches!(c.kind, VertexKind::Insert | VertexKind::Derive { .. }) {
                        out.push(format!(
                            "{label}: APPEAR child is {}, expected INSERT or DERIVE",
                            c.kind.tag()
                        ));
                    }
                }
            }
            VertexKind::Derive { trigger, .. } => {
                if *trigger >= n.children.len() && !n.children.is_empty() {
                    out.push(format!(
                        "{label}: trigger index {trigger} out of range for {} children",
                        n.children.len()
                    ));
                }
                for &c in &n.children {
                    let b = tree.node(c);
                    match &b.kind {
                        VertexKind::Exist { end } => {
                            if b.time > n.time || end.is_some_and(|e| e <= n.time) {
                                out.push(format!(
                                    "{label}: body EXIST {}@{} [{}, {:?}) does not cover the \
                                     derivation time",
                                    b.tuple, b.node, b.time, end
                                ));
                            }
                        }
                        other => out.push(format!(
                            "{label}: DERIVE child is {}, expected EXIST",
                            other.tag()
                        )),
                    }
                }
            }
            VertexKind::Insert | VertexKind::Delete | VertexKind::Underive { .. } => {
                if !n.children.is_empty() {
                    out.push(format!(
                        "{label}: leaf has {} children, expected none",
                        n.children.len()
                    ));
                }
            }
            VertexKind::Disappear => {
                out.push(format!("{label}: DISAPPEAR never occurs in extracted trees"));
            }
        }
    }
    out
}

/// [`well_formedness_violations`], packaged as a `Result` for callers
/// that only want pass/fail with a joined message.
pub fn check_well_formed(g: &ProvGraph) -> Result<(), String> {
    let violations = well_formedness_violations(g);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}
