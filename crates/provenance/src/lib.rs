//! # dp-provenance — temporal network provenance
//!
//! The provenance layer of the DiffProv suite: builds the temporal
//! provenance graph of Section 3.2 from the engine's event stream, extracts
//! provenance *trees* for queried events, collapses them into the
//! tuple-granularity views DiffProv reasons over, and implements the two
//! baselines the paper evaluates against (the Y!-style whole-tree query and
//! the plain tree diff of Section 2.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annot;
pub mod diff;
pub mod graph;
pub mod invariants;
pub mod tree;
pub mod whynot;

pub use annot::{
    reconstruct_tree, reconstruct_tree_latest, AnnotRecorder, AnnotStats, AnnotationStore,
    CauseAnn, EpisodeAnn,
};
pub use diff::{plain_tree_diff, ybang_answer_size, PlainDiff, VertexSig};
pub use graph::{Episode, GraphRecorder, GraphStats, ProvGraph, Vertex, VertexId, VertexKind};
pub use invariants::{
    check_well_formed, tree_well_formedness_violations, well_formedness_violations,
};
pub use tree::{
    extract_tree, extract_tree_latest, tuple_view, ProvTree, TreeIdx, TreeNode, TupleNode,
    TupleTree,
};
pub use whynot::{why_not, FailReason, RuleFailure, WhyNot};
