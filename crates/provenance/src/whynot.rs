//! Negative provenance: "why does this tuple NOT exist?"
//!
//! DiffProv builds on Y! [Wu et al., SIGCOMM 2014], which explains
//! *missing* events. This module provides that capability over the NDlog
//! engine: given a goal tuple that is absent, it explains the absence
//! rule by rule — for each rule that could have derived the goal, which
//! body tuple was missing (recursively) or which constraint failed.
//!
//! The explanation is the natural companion to DiffProv: the operator
//! first asks *why not* to understand the failure, then hands DiffProv a
//! reference event to compute the fix.

use std::fmt;

use dp_ndlog::{Constraint, Engine, Env, Pattern, ProvenanceSink, Rule};
use dp_types::{LogicalTime, NodeId, Sym, Tuple, TupleRef, Value};

use crate::graph::ProvGraph;

/// Why a goal tuple does not exist.
#[derive(Clone, Debug)]
pub enum WhyNot {
    /// It does exist — nothing to explain.
    Exists,
    /// A base tuple that was never inserted (or was deleted).
    BaseAbsent {
        /// When it was deleted, if it ever existed.
        deleted_at: Option<LogicalTime>,
    },
    /// A derived tuple with no successful derivation; one entry per rule
    /// that could produce it.
    NoDerivation(Vec<RuleFailure>),
    /// The goal's table is not declared in the program.
    UnknownTable,
    /// Recursion depth exhausted.
    DepthLimit,
}

/// Why one specific rule failed to derive the goal.
#[derive(Clone, Debug)]
pub struct RuleFailure {
    /// The rule.
    pub rule: Sym,
    /// The reason.
    pub reason: FailReason,
}

/// The proximate cause of a rule not firing.
#[derive(Clone, Debug)]
pub enum FailReason {
    /// The head cannot produce the goal values at all (no unification).
    HeadMismatch,
    /// A body atom has no matching tuple under the bindings established
    /// so far.
    MissingBody {
        /// Node searched.
        node: NodeId,
        /// The atom's table.
        table: Sym,
        /// The instantiated pattern (bound values; `None` = unconstrained).
        pattern: Vec<Option<Value>>,
        /// Recursive explanation when the pattern is fully ground.
        nested: Option<Box<WhyNot>>,
    },
    /// All body atoms matched, but a constraint rejected every binding.
    ConstraintFailed {
        /// Display form of the failing constraint.
        constraint: String,
    },
    /// All atoms matched and constraints passed — the tuple is derivable
    /// but absent, which indicates in-flight work or a bug.
    DerivableButAbsent,
}

/// Explains why `goal` is absent from the engine's current state.
///
/// `depth` bounds the recursion through missing subgoals; the provenance
/// `graph` (optional) supplies deletion times for base tuples.
pub fn why_not<S: ProvenanceSink>(
    engine: &Engine<S>,
    graph: Option<&ProvGraph>,
    goal: &TupleRef,
    depth: usize,
) -> WhyNot {
    if engine.lookup(&goal.node, &goal.tuple).is_some() {
        return WhyNot::Exists;
    }
    if depth == 0 {
        return WhyNot::DepthLimit;
    }
    let program = engine.program().clone();
    let Some(schema) = program.schemas.get(&goal.tuple.table) else {
        return WhyNot::UnknownTable;
    };
    if schema.kind != dp_types::TableKind::Derived {
        let deleted_at = graph.and_then(|g| {
            g.episodes(goal)
                .iter()
                .rev()
                .find_map(|e| e.end)
        });
        return WhyNot::BaseAbsent { deleted_at };
    }
    let mut failures = Vec::new();
    for rule in program.rules() {
        if rule.head.table != goal.tuple.table {
            continue;
        }
        let reason = if rule.agg.is_some() {
            explain_agg_rule(engine, rule, goal)
        } else {
            explain_rule(engine, graph, rule, goal, depth)
        };
        failures.push(RuleFailure {
            rule: rule.name.clone(),
            reason,
        });
    }
    WhyNot::NoDerivation(failures)
}

/// Unifies the rule head with the goal, returning the variable bindings —
/// or `None` when the head cannot produce the goal.
fn unify_head(rule: &Rule, goal: &TupleRef) -> Option<Env> {
    let mut env = Env::new();
    // The head location must be the goal's node.
    match &rule.head.loc {
        dp_ndlog::Expr::Var(v) => {
            env.insert(v.clone(), Value::Str(goal.node.0.clone()));
        }
        other => {
            if other.eval(&env).ok()? != Value::Str(goal.node.0.clone()) {
                return None;
            }
        }
    }
    for (expr, value) in rule.head.args.iter().zip(&goal.tuple.args) {
        match expr {
            dp_ndlog::Expr::Var(v) => match env.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    env.insert(v.clone(), value.clone());
                }
            },
            dp_ndlog::Expr::Const(c) => {
                if c != value {
                    return None;
                }
            }
            complex => {
                // Try to invert; on failure, leave the variables free (the
                // body search will enumerate candidates).
                if let Ok(bindings) = complex.invert(value, &env) {
                    for (var, val) in bindings {
                        env.insert(var, val);
                    }
                }
            }
        }
    }
    Some(env)
}

/// Aggregation rules fire on their fence and fold contributors; the useful
/// explanations are "the fence never arrived" and "the contributors present
/// at fence time do not produce this value".
fn explain_agg_rule<S: ProvenanceSink>(
    engine: &Engine<S>,
    rule: &Rule,
    goal: &TupleRef,
) -> FailReason {
    let fence = &rule.body[0];
    let fence_present = engine
        .view(&goal.node)
        .map(|v| v.table(&fence.table).next().is_some())
        .unwrap_or(false);
    if !fence_present {
        return FailReason::MissingBody {
            node: goal.node.clone(),
            table: fence.table.clone(),
            pattern: fence.args.iter().map(|_| None).collect(),
            nested: None,
        };
    }
    FailReason::ConstraintFailed {
        constraint: format!(
            "aggregate {} over the contributors present at fence time does not \
             produce this tuple",
            rule.agg.as_ref().expect("caller checked").func.name()
        ),
    }
}

fn explain_rule<S: ProvenanceSink>(
    engine: &Engine<S>,
    graph: Option<&ProvGraph>,
    rule: &Rule,
    goal: &TupleRef,
    depth: usize,
) -> FailReason {
    let Some(env) = unify_head(rule, goal) else {
        return FailReason::HeadMismatch;
    };
    // Candidate body nodes: if the body location variable is bound (head
    // at the same location), only that node; otherwise every node.
    let loc_var = &rule.body[0].loc;
    let nodes: Vec<NodeId> = match env.get(loc_var) {
        Some(Value::Str(s)) => vec![NodeId(s.clone())],
        _ => engine.nodes().map(|(n, _)| n.clone()).collect(),
    };
    let mut best: Option<(usize, FailReason)> = None;
    for node in &nodes {
        let mut env = env.clone();
        env.insert(loc_var.clone(), Value::Str(node.0.clone()));
        let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
        match search_body(engine, graph, rule, node, &mut remaining, 0, env, depth) {
            Ok(()) => return FailReason::DerivableButAbsent,
            Err((progress, reason)) => {
                // Prefer the most advanced explanation (most atoms
                // satisfied before failing), then the most informative.
                let score = score_of(progress, &reason);
                if best.as_ref().is_none_or(|(p, r)| score > score_of(*p, r)) {
                    best = Some((progress, reason));
                }
            }
        }
    }
    best.map(|(_, r)| r).unwrap_or(FailReason::HeadMismatch)
}

/// Ranks failure explanations: more satisfied atoms first; among equals, a
/// recursive (nested) cause beats a bare missing pattern.
fn score_of(progress: usize, reason: &FailReason) -> (usize, usize) {
    let informative = match reason {
        // A recursive explanation through another derived tuple is the
        // most useful ("the pktOut is missing because ..."), a missing
        // base tuple the next best, a constraint failure after that.
        FailReason::MissingBody {
            nested: Some(nested),
            ..
        } => match **nested {
            WhyNot::NoDerivation(_) => 3,
            _ => 2,
        },
        FailReason::ConstraintFailed { .. } => 1,
        _ => 0,
    };
    (progress, informative)
}

/// Tuples on `node` matching `atom` under `env`.
fn candidates_for<S: ProvenanceSink>(
    engine: &Engine<S>,
    node: &NodeId,
    rule: &Rule,
    atom_idx: usize,
    env: &Env,
) -> Vec<Tuple> {
    let atom = &rule.body[atom_idx];
    match engine.view(node) {
        Some(view) => view
            .table(&atom.table)
            .filter(|t| {
                let mut env2 = env.clone();
                t.arity() == atom.args.len()
                    && atom
                        .args
                        .iter()
                        .zip(&t.args)
                        .all(|(p, v)| p.matches(v, &mut env2))
            })
            .cloned()
            .collect(),
        None => Vec::new(),
    }
}

/// Goal-directed search for a full body binding. Atoms are expanded most-
/// constrained-first (fewest candidates), which both prunes the search and
/// produces the explanation a human would give ("the host is on oz4, and
/// oz4 has no pktOut towards it" rather than "bb1 has no host tuple").
/// On failure returns how many atoms were satisfied and the blocking
/// reason along the most advanced path.
#[allow(clippy::too_many_arguments)]
fn search_body<S: ProvenanceSink>(
    engine: &Engine<S>,
    graph: Option<&ProvGraph>,
    rule: &Rule,
    node: &NodeId,
    remaining: &mut Vec<usize>,
    satisfied: usize,
    env: Env,
    depth: usize,
) -> Result<(), (usize, FailReason)> {
    if remaining.is_empty() {
        // Assignments + constraints.
        let mut env = env;
        if rule.run_assigns(&mut env).is_err() {
            return Err((
                satisfied,
                FailReason::ConstraintFailed {
                    constraint: "assignment failed".to_string(),
                },
            ));
        }
        for c in &rule.constraints {
            let ok = match c {
                Constraint::Expr(e) => matches!(e.eval(&env), Ok(Value::Bool(true))),
                Constraint::Builtin { name, args } => {
                    let vals: Result<Vec<Value>, _> = args.iter().map(|a| a.eval(&env)).collect();
                    match (vals, engine.view(node)) {
                        (Ok(vals), Some(view)) => engine
                            .program()
                            .builtin(name)
                            .ok()
                            .map(|b| b.eval(&view, &vals).unwrap_or(false))
                            .unwrap_or(false),
                        _ => false,
                    }
                }
            };
            if !ok {
                return Err((
                    satisfied,
                    FailReason::ConstraintFailed {
                        constraint: c.to_string(),
                    },
                ));
            }
        }
        return Ok(());
    }
    // Atom selection shapes the explanation:
    //  1. a missing atom whose pattern is fully ground is reported first —
    //     it admits a recursive explanation;
    //  2. otherwise expand a satisfiable atom, most-constrained first,
    //     base-table facts before derived tuples — binding more variables
    //     may ground a missing atom for rule 1;
    //  3. only when nothing is satisfiable is a non-ground missing atom
    //     reported.
    let schemas = &engine.program().schemas;
    let scored: Vec<(usize, usize, Vec<Tuple>, bool)> = remaining
        .iter()
        .enumerate()
        .map(|(slot, &ai)| {
            let c = candidates_for(engine, node, rule, ai, &env);
            let ground = rule.body[ai].args.iter().all(|p| match p {
                Pattern::Const(_) => true,
                Pattern::Var(v) => env.contains_key(v),
                Pattern::Wildcard => false,
            });
            (slot, ai, c, ground)
        })
        .collect();
    let chosen = scored
        .iter()
        .find(|(_, _, c, ground)| c.is_empty() && *ground)
        .or_else(|| {
            scored
                .iter()
                .filter(|(_, _, c, _)| !c.is_empty())
                .min_by_key(|(_, ai, c, _)| {
                    let derived = matches!(
                        schemas.get(&rule.body[*ai].table).map(|s| s.kind),
                        Some(dp_types::TableKind::Derived)
                    );
                    (c.len(), derived, *ai)
                })
        })
        .or_else(|| scored.first())
        .expect("remaining is nonempty");
    let (slot, chosen_idx, candidates) = (chosen.0, chosen.1, chosen.2.clone());
    let atom = &rule.body[chosen_idx];
    if candidates.is_empty() {
        // Report the instantiated pattern; recurse when fully ground.
        let pattern: Vec<Option<Value>> = atom
            .args
            .iter()
            .map(|p| match p {
                Pattern::Const(c) => Some(c.clone()),
                Pattern::Var(v) => env.get(v).cloned(),
                Pattern::Wildcard => None,
            })
            .collect();
        let nested = if pattern.iter().all(Option::is_some) {
            let sub = TupleRef::new(
                node.clone(),
                Tuple::new(
                    atom.table.clone(),
                    pattern.iter().map(|v| v.clone().expect("ground")).collect(),
                ),
            );
            Some(Box::new(why_not(engine, graph, &sub, depth - 1)))
        } else {
            None
        };
        return Err((
            satisfied,
            FailReason::MissingBody {
                node: node.clone(),
                table: atom.table.clone(),
                pattern,
                nested,
            },
        ));
    }
    remaining.remove(slot);
    let mut best_err: Option<(usize, FailReason)> = None;
    for t in candidates {
        let mut env2 = env.clone();
        let ok = atom
            .args
            .iter()
            .zip(&t.args)
            .all(|(p, v)| p.matches(v, &mut env2));
        debug_assert!(ok);
        match search_body(engine, graph, rule, node, remaining, satisfied + 1, env2, depth) {
            Ok(()) => {
                remaining.insert(slot, chosen_idx);
                return Ok(());
            }
            Err(e) => {
                if best_err
                    .as_ref()
                    .is_none_or(|(p, r)| score_of(e.0, &e.1) > score_of(*p, r))
                {
                    best_err = Some(e);
                }
            }
        }
    }
    remaining.insert(slot, chosen_idx);
    Err(best_err.expect("at least one candidate failed"))
}

impl WhyNot {
    /// Pretty-prints the explanation as an indented tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            WhyNot::Exists => out.push_str(&format!("{pad}EXISTS\n")),
            WhyNot::BaseAbsent { deleted_at } => match deleted_at {
                Some(t) => out.push_str(&format!("{pad}base tuple was DELETED at t={t}\n")),
                None => out.push_str(&format!("{pad}base tuple was never inserted\n")),
            },
            WhyNot::UnknownTable => out.push_str(&format!("{pad}unknown table\n")),
            WhyNot::DepthLimit => out.push_str(&format!("{pad}... (depth limit)\n")),
            WhyNot::NoDerivation(fails) => {
                for f in fails {
                    out.push_str(&format!("{pad}rule {} failed: ", f.rule));
                    match &f.reason {
                        FailReason::HeadMismatch => out.push_str("head cannot match the goal\n"),
                        FailReason::DerivableButAbsent => {
                            out.push_str("derivable but absent (in flight?)\n")
                        }
                        FailReason::ConstraintFailed { constraint } => {
                            out.push_str(&format!("constraint {constraint} rejected all bindings\n"))
                        }
                        FailReason::MissingBody {
                            node,
                            table,
                            pattern,
                            nested,
                        } => {
                            let pat: Vec<String> = pattern
                                .iter()
                                .map(|p| p.as_ref().map_or("_".to_string(), |v| v.to_string()))
                                .collect();
                            out.push_str(&format!(
                                "no {table}({}) at {node}\n",
                                pat.join(",")
                            ));
                            if let Some(n) = nested {
                                n.render_into(depth + 1, out);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Display for WhyNot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphRecorder;
    use dp_ndlog::Program;
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind};
    use std::sync::Arc;

    fn program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new("in", TableKind::ImmutableBase, [("x", FieldType::Int)]));
        reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
        reg.declare(Schema::new("mid", TableKind::Derived, [("y", FieldType::Int)]));
        reg.declare(Schema::new("out", TableKind::Derived, [("y", FieldType::Int)]));
        Program::builder(reg)
            .rules_text(
                "r1 mid(@N, Y) :- in(@N, X), cfg(@N, K), Y := X + K.\n\
                 r2 out(@N, Y) :- mid(@N, Y), Y > 10.",
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn engine_with(inputs: &[(i64, bool)]) -> Engine<GraphRecorder> {
        // (value, is_cfg)
        let mut eng = Engine::new(program(), GraphRecorder::new());
        let n = NodeId::new("n");
        for &(v, is_cfg) in inputs {
            let t = if is_cfg { tuple!("cfg", v) } else { tuple!("in", v) };
            eng.schedule_insert(0, n.clone(), t).unwrap();
        }
        eng.run().unwrap();
        eng
    }

    #[test]
    fn existing_tuple_short_circuits() {
        let eng = engine_with(&[(5, true), (10, false)]);
        let goal = TupleRef::new("n", tuple!("mid", 15));
        assert!(matches!(why_not(&eng, None, &goal, 5), WhyNot::Exists));
    }

    #[test]
    fn missing_base_tuple_is_reported() {
        let eng = engine_with(&[]);
        let goal = TupleRef::new("n", tuple!("in", 1));
        assert!(matches!(
            why_not(&eng, None, &goal, 5),
            WhyNot::BaseAbsent { deleted_at: None }
        ));
    }

    #[test]
    fn deleted_base_tuple_reports_deletion_time() {
        let mut eng = engine_with(&[(5, true)]);
        let n = NodeId::new("n");
        eng.schedule_delete(100, n.clone(), tuple!("cfg", 5)).unwrap();
        eng.run().unwrap();
        let graph = eng.sink().graph.clone();
        let goal = TupleRef::new("n", tuple!("cfg", 5));
        match why_not(&eng, Some(&graph), &goal, 5) {
            WhyNot::BaseAbsent { deleted_at: Some(_) } => {}
            other => panic!("expected deletion report, got {other:?}"),
        }
    }

    #[test]
    fn missing_body_recurses_to_the_root_cause() {
        // out(15) missing because mid(15) missing because cfg absent.
        let eng = engine_with(&[(10, false)]);
        let goal = TupleRef::new("n", tuple!("out", 15));
        let explanation = why_not(&eng, None, &goal, 5);
        let rendered = explanation.render();
        assert!(rendered.contains("rule r2 failed"), "{rendered}");
        assert!(rendered.contains("no mid(15)"), "{rendered}");
        assert!(rendered.contains("rule r1 failed"), "{rendered}");
        // The nested explanation bottoms out at the missing cfg; its value
        // is unconstrained (any K could work), so the pattern shows `_`.
        assert!(rendered.contains("no cfg(_)"), "{rendered}");
    }

    #[test]
    fn constraint_failures_are_named() {
        // mid(7) exists but out(7) requires Y > 10.
        let eng = engine_with(&[(2, true), (5, false)]);
        let goal = TupleRef::new("n", tuple!("out", 7));
        let explanation = why_not(&eng, None, &goal, 5);
        let rendered = explanation.render();
        assert!(rendered.contains("constraint (Y > 10)"), "{rendered}");
    }

    #[test]
    fn head_mismatch_is_detected() {
        // No rule derives table "out" with a head that could equal out(7)
        // when the goal's node cannot match — simulate by asking on a node
        // with no state; the body search reports missing inputs instead.
        let eng = engine_with(&[(2, true), (5, false)]);
        let goal = TupleRef::new("elsewhere", tuple!("out", 7));
        let explanation = why_not(&eng, None, &goal, 5);
        assert!(matches!(explanation, WhyNot::NoDerivation(_)));
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let eng = engine_with(&[]);
        let goal = TupleRef::new("n", tuple!("out", 15));
        let explanation = why_not(&eng, None, &goal, 1);
        let rendered = explanation.render();
        assert!(rendered.contains("depth limit") || rendered.contains("no mid"), "{rendered}");
    }
}
