//! Compact annotation-based provenance with on-demand reconstruction.
//!
//! The append-only [`ProvGraph`](crate::graph::ProvGraph) materializes every
//! INSERT/DERIVE/APPEAR/... vertex as it streams past, which makes tree
//! extraction a pure read but costs roughly seven retained vertices per
//! tuple lifetime. Following "Provenance for Large-scale Datalog"
//! (Zhao/Subotić/Scholz), this module keeps only a small per-episode
//! *annotation* — start, end, minimal proof height, and the identity of the
//! winning rule firing — and rebuilds a minimal proof tree lazily at query
//! time by re-running the rule body as a top-down, height-bounded search
//! over the annotated database.
//!
//! # Why the reconstruction is exact
//!
//! The engine records, for every non-redundant derivation, the triggering
//! body slot and the firing horizon `fired_at` (the trigger's appearance
//! clock). Three facts make the search land on the byte-identical tree the
//! graph backend would extract:
//!
//! 1. *Visibility is an episode predicate.* A body tuple participated in
//!    the join iff it has an episode covering `fired_at` (deletions force a
//!    batch flush, so state only grows between a delta's appearance and its
//!    firing), and it survived to the apply step iff it has an episode
//!    covering the head episode's start.
//! 2. *The trigger is pinned.* Engine clocks are unique per queue pop, so
//!    at most one tuple in the whole system has an episode starting exactly
//!    at `fired_at` — the recorded trigger.
//! 3. *Ties break lexicographically.* All matches of one firing are
//!    scheduled adjacently in lexicographic body order and pop with nothing
//!    in between, so the minimal body vector among candidates passing the
//!    filters above is exactly the one whose derivation opened the episode.
//!
//! Rules whose firings cannot be re-run from annotations alone — native
//! rules, aggregations, and rules with stateful builtin constraints — fall
//! back to the paper's "report" capture mode: the annotation stores the
//! body explicitly (still far smaller than the full graph).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use dp_ndlog::{Constraint, Env, Expr, Program, ProvEvent, ProvenanceSink, Rule};
use dp_types::{Error, LogicalTime, NodeId, Sym, Tuple, TupleRef, TupleStore, Value};

use crate::graph::VertexKind;
use crate::tree::{ProvTree, TreeIdx, TreeNode};

/// How an episode came to exist — the compact counterpart of the graph's
/// INSERT/DERIVE cause vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CauseAnn {
    /// Base insertion (or a boundary episode synthesized when recording
    /// started mid-stream).
    Base,
    /// A declarative rule firing, identified by the minimal information
    /// the reconstructor needs: the rule, the triggering body slot, and
    /// the firing horizon. The body is recomputed at query time.
    Fired {
        /// The rule that fired.
        rule: Sym,
        /// Index of the triggering atom in the rule body.
        trigger: usize,
        /// The trigger's appearance clock — the join's `as_of` horizon.
        fired_at: LogicalTime,
    },
    /// A firing whose body cannot be re-derived from annotations (native
    /// rules, aggregations, stateful builtin constraints): the body is
    /// stored explicitly, mirroring the paper's "report" capture mode.
    Reported {
        /// The rule that fired.
        rule: Sym,
        /// Index of the triggering body tuple.
        trigger: usize,
        /// The body tuples, in reported order.
        body: Vec<TupleRef>,
    },
}

/// One annotated tuple lifetime: the compact counterpart of
/// [`Episode`](crate::graph::Episode).
#[derive(Clone, Debug)]
pub struct EpisodeAnn {
    /// Episode start (the APPEAR clock).
    pub start: LogicalTime,
    /// Episode end (exclusive), once the tuple disappeared.
    pub end: Option<LogicalTime>,
    /// Minimal proof-tree height: 0 for base tuples, otherwise one more
    /// than the maximum height of the winning derivation's body episodes.
    pub height: u32,
    /// What opened the episode.
    pub cause: CauseAnn,
}

impl EpisodeAnn {
    /// True if the episode covers time `t`.
    pub fn covers(&self, t: LogicalTime) -> bool {
        self.start <= t && self.end.is_none_or(|e| t < e)
    }
}

/// Size profile of an [`AnnotationStore`] — the numbers the bench legs
/// compare against [`GraphStats`](crate::graph::GraphStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnotStats {
    /// Episode annotations retained.
    pub episodes: u64,
    /// Episodes carrying an explicitly reported body.
    pub reported: u64,
    /// Body references inside reported episodes.
    pub reported_body_refs: u64,
    /// Distinct annotated tuples (slot count).
    pub tuples: u64,
}

impl AnnotStats {
    /// Total retained records: one per episode plus one per reported body
    /// reference — the honest memory unit to compare with the graph's
    /// vertex count.
    pub fn total(&self) -> u64 {
        self.episodes + self.reported_body_refs
    }
}

impl fmt::Display for AnnotStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records ({} episodes over {} tuples, {} reported with {} body refs)",
            self.total(),
            self.episodes,
            self.tuples,
            self.reported,
            self.reported_body_refs
        )
    }
}

/// The compact annotation backend: per-episode annotations keyed by dense
/// tuple slots, plus the per-(node, table) index the reconstructor scans.
#[derive(Clone)]
pub struct AnnotationStore {
    program: Arc<Program>,
    store: TupleStore,
    /// All episodes of each located tuple, in start order (slot-keyed).
    episodes: HashMap<(NodeId, u32), Vec<EpisodeAnn>>,
    /// Every tuple ever seen per (node, table), in tuple order — the scan
    /// index for top-down reconstruction. `BTreeSet` keeps enumeration
    /// deterministic, mirroring the engine's ordered table scans.
    tables: BTreeMap<(NodeId, Sym), BTreeSet<Arc<Tuple>>>,
    /// Nodes seen anywhere in the stream.
    nodes: BTreeSet<NodeId>,
    /// Height + cause staged between an INSERT/DERIVE event and the APPEAR
    /// that immediately follows it in the stream.
    pending: HashMap<(NodeId, u32), (u32, CauseAnn)>,
}

impl AnnotationStore {
    /// An empty store for `program`'s event streams.
    pub fn new(program: Arc<Program>) -> Self {
        AnnotationStore {
            program,
            store: TupleStore::new(),
            episodes: HashMap::new(),
            tables: BTreeMap::new(),
            nodes: BTreeSet::new(),
            pending: HashMap::new(),
        }
    }

    /// The program whose streams this store annotates.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The episodes of a located tuple, in chronological order.
    pub fn episodes(&self, tref: &TupleRef) -> &[EpisodeAnn] {
        self.store
            .slot_of(&tref.tuple)
            .and_then(|slot| self.episodes.get(&(tref.node.clone(), slot)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The episode of `tref` covering time `t`, if any.
    pub fn episode_at(&self, tref: &TupleRef, t: LogicalTime) -> Option<&EpisodeAnn> {
        self.episodes(tref).iter().rev().find(|e| e.covers(t))
    }

    /// The most recent episode of `tref` that started no later than `t`.
    pub fn last_episode_starting_by(&self, tref: &TupleRef, t: LogicalTime) -> Option<&EpisodeAnn> {
        self.episodes(tref).iter().rev().find(|e| e.start <= t)
    }

    /// Size profile of the store.
    pub fn stats(&self) -> AnnotStats {
        let mut s = AnnotStats {
            tuples: self.store.slot_count() as u64,
            ..AnnotStats::default()
        };
        for eps in self.episodes.values() {
            for ep in eps {
                s.episodes += 1;
                if let CauseAnn::Reported { body, .. } = &ep.cause {
                    s.reported += 1;
                    s.reported_body_refs += body.len() as u64;
                }
            }
        }
        s
    }

    fn key(&mut self, node: &NodeId, tuple: &Arc<Tuple>) -> (NodeId, u32) {
        let slot = self.store.slot(Arc::clone(tuple));
        (node.clone(), slot)
    }

    fn index(&mut self, node: &NodeId, tuple: &Arc<Tuple>) {
        self.nodes.insert(node.clone());
        self.tables
            .entry((node.clone(), tuple.table.clone()))
            .or_default()
            .insert(Arc::clone(tuple));
    }

    fn open_episode(&self, key: &(NodeId, u32)) -> Option<&EpisodeAnn> {
        let ep = self.episodes.get(key)?.last()?;
        if ep.end.is_none() {
            Some(ep)
        } else {
            None
        }
    }

    /// The height of the open episode of `tref`, synthesizing a boundary
    /// episode (open since time 0, height 0) for tuples that predate the
    /// start of recording — the mirror of the graph's
    /// `synthesize_boundary_episode`.
    fn open_height_or_boundary(&mut self, tref: &TupleRef) -> u32 {
        let key = self.key(&tref.node, &tref.tuple);
        if let Some(ep) = self.open_episode(&key) {
            return ep.height;
        }
        self.index(&tref.node, &tref.tuple);
        self.episodes.entry(key).or_default().push(EpisodeAnn {
            start: 0,
            end: None,
            height: 0,
            cause: CauseAnn::Base,
        });
        0
    }

    /// True when `rule` must be captured in report mode: its body cannot
    /// be recomputed from episode annotations alone.
    fn must_report(&self, rule: &Sym) -> bool {
        match self.program.rule(rule) {
            // Not a declarative rule: a native rule reporting its
            // dependencies through the instrumentation hook.
            None => true,
            Some(r) => {
                r.agg.is_some()
                    || r.constraints
                        .iter()
                        .any(|c| matches!(c, Constraint::Builtin { .. }))
            }
        }
    }

    /// Folds one event into the store. Negative events (DELETE/UNDERIVE)
    /// are dropped entirely — they never occur in extracted trees — and
    /// DISAPPEAR only closes the open episode.
    pub fn record_event(&mut self, event: ProvEvent) {
        match event {
            ProvEvent::InsertBase { node, tuple, .. } => {
                let key = self.key(&node, &tuple);
                if self.open_episode(&key).is_some() {
                    // Base re-inserted while alive: extra support, which
                    // extraction never walks.
                    return;
                }
                self.index(&node, &tuple);
                self.pending.insert(key, (0, CauseAnn::Base));
            }
            ProvEvent::Derive {
                node,
                tuple,
                rule,
                fired_at,
                body,
                trigger,
                redundant,
                ..
            } => {
                if redundant {
                    return;
                }
                let mut height = 0u32;
                for b in &body {
                    height = height.max(self.open_height_or_boundary(b) + 1);
                }
                let cause = if self.must_report(&rule) {
                    CauseAnn::Reported {
                        rule,
                        trigger,
                        body,
                    }
                } else {
                    CauseAnn::Fired {
                        rule,
                        trigger,
                        fired_at,
                    }
                };
                let key = self.key(&node, &tuple);
                self.index(&node, &tuple);
                self.pending.insert(key, (height, cause));
            }
            ProvEvent::Appear { time, node, tuple } => {
                let key = self.key(&node, &tuple);
                self.index(&node, &tuple);
                // An APPEAR without a staged cause means recording started
                // mid-stream; treat it as a base fact, like the graph's
                // synthesized INSERT.
                let (height, cause) = self
                    .pending
                    .remove(&key)
                    .unwrap_or((0, CauseAnn::Base));
                self.episodes.entry(key).or_default().push(EpisodeAnn {
                    start: time,
                    end: None,
                    height,
                    cause,
                });
            }
            ProvEvent::Disappear { time, node, tuple } => {
                let key = self.key(&node, &tuple);
                if let Some(ep) = self.episodes.get_mut(&key).and_then(|v| v.last_mut()) {
                    if ep.end.is_none() {
                        ep.end = Some(time);
                    }
                }
            }
            ProvEvent::DeleteBase { .. } | ProvEvent::Underive { .. } => {}
        }
    }
}

/// Reconstructs the provenance tree of `root` as of time `at`, rebuilding
/// what [`extract_tree`](crate::tree::extract_tree) would have read off a
/// full graph. Returns `None` when the tuple has no episode covering `at`.
///
/// # Panics
///
/// Panics if an annotated derivation cannot be re-derived from the store —
/// that indicates a corrupted or mismatched store (wrong program, spliced
/// streams), not a query error.
pub fn reconstruct_tree(store: &AnnotationStore, root: &TupleRef, at: LogicalTime) -> Option<ProvTree> {
    let episode = store.episode_at(root, at)?;
    let mut tree = ProvTree::empty();
    build_exist(store, root, episode, None, &mut tree);
    Some(tree)
}

/// Like [`reconstruct_tree`], but accepts tuples that have since
/// disappeared: uses the last episode starting at or before `at`.
pub fn reconstruct_tree_latest(
    store: &AnnotationStore,
    root: &TupleRef,
    at: LogicalTime,
) -> Option<ProvTree> {
    let episode = store.last_episode_starting_by(root, at)?;
    let mut tree = ProvTree::empty();
    build_exist(store, root, episode, None, &mut tree);
    Some(tree)
}

fn push_node(
    tree: &mut ProvTree,
    kind: VertexKind,
    tref: &TupleRef,
    time: LogicalTime,
    parent: Option<TreeIdx>,
) -> TreeIdx {
    let idx = tree.nodes_mut().len();
    tree.nodes_mut().push(TreeNode {
        kind,
        node: tref.node.clone(),
        tuple: Arc::clone(&tref.tuple),
        time,
        parent,
        children: Vec::new(),
        // Reconstructed trees have no source graph; the tree index itself
        // serves as the origin, which keeps origins unique per tree.
        origin: idx,
    });
    if let Some(p) = parent {
        tree.nodes_mut()[p].children.push(idx);
    }
    idx
}

/// Renders one episode as its EXIST → APPEAR → cause chain, recursing into
/// the body episodes of derivations. `ep.start` plays the role the record
/// time played during graph construction: body children are the episodes
/// covering it.
fn build_exist(
    store: &AnnotationStore,
    tref: &TupleRef,
    ep: &EpisodeAnn,
    parent: Option<TreeIdx>,
    tree: &mut ProvTree,
) -> TreeIdx {
    let exist = push_node(tree, VertexKind::Exist { end: ep.end }, tref, ep.start, parent);
    let appear = push_node(tree, VertexKind::Appear, tref, ep.start, Some(exist));
    match &ep.cause {
        CauseAnn::Base => {
            push_node(tree, VertexKind::Insert, tref, ep.start, Some(appear));
        }
        CauseAnn::Reported { rule, trigger, body } => {
            let derive = push_node(
                tree,
                VertexKind::Derive {
                    rule: rule.clone(),
                    trigger: *trigger,
                },
                tref,
                ep.start,
                Some(appear),
            );
            for b in body {
                let child = body_episode(store, b, ep.start, tref, rule);
                build_exist(store, b, child, Some(derive), tree);
            }
        }
        CauseAnn::Fired {
            rule,
            trigger,
            fired_at,
        } => {
            let (firing_node, body) = solve_firing(store, tref, ep, rule, *trigger, *fired_at)
                .unwrap_or_else(|| {
                    panic!(
                        "annotation reconstruction failed: no candidate body for {tref} \
                         via rule {rule} (trigger slot {trigger}, fired_at {fired_at})"
                    )
                });
            let derive = push_node(
                tree,
                VertexKind::Derive {
                    rule: rule.clone(),
                    trigger: *trigger,
                },
                tref,
                ep.start,
                Some(appear),
            );
            for tuple in body {
                let b = TupleRef::new(firing_node.clone(), tuple);
                let child = body_episode(store, &b, ep.start, tref, rule);
                build_exist(store, &b, child, Some(derive), tree);
            }
        }
    }
    exist
}

fn body_episode<'a>(
    store: &'a AnnotationStore,
    b: &TupleRef,
    at: LogicalTime,
    head: &TupleRef,
    rule: &Sym,
) -> &'a EpisodeAnn {
    store.episode_at(b, at).unwrap_or_else(|| {
        panic!("annotation store lost body episode of {b} at {at} (head {head}, rule {rule})")
    })
}

/// Re-runs the recorded firing: finds the body vector the engine joined
/// when it opened `ep`. Returns the firing node and the body tuples in
/// rule-body order, or `None` if no candidate passes every filter.
fn solve_firing(
    store: &AnnotationStore,
    head: &TupleRef,
    ep: &EpisodeAnn,
    rule_name: &Sym,
    trigger: usize,
    fired_at: LogicalTime,
) -> Option<(NodeId, Vec<Arc<Tuple>>)> {
    let rule = store
        .program
        .rule(rule_name)
        .expect("Fired annotations only name declarative rules");
    let env = prebind_from_head(rule, head)?;

    // The trigger is pinned: its episode starts exactly at `fired_at`.
    // Engine clocks are unique per pop, so this identifies one tuple (and
    // with it the firing node); the scan below merely avoids assuming so.
    let trig_atom = &rule.body[trigger];
    let candidate_nodes: Vec<NodeId> = match env.get(&trig_atom.loc) {
        Some(Value::Str(s)) => vec![NodeId(s.clone())],
        _ => store.nodes.iter().cloned().collect(),
    };

    let mut best: Option<(NodeId, Vec<Arc<Tuple>>)> = None;
    for node in candidate_nodes {
        let Some(table) = store.tables.get(&(node.clone(), trig_atom.table.clone())) else {
            continue;
        };
        for tuple in table {
            let t = TupleRef::new(node.clone(), Arc::clone(tuple));
            if !store.episodes(&t).iter().any(|e| e.start == fired_at) {
                continue;
            }
            let mut env = env.clone();
            match env.get(&trig_atom.loc) {
                Some(v) => {
                    if *v != Value::Str(node.0.clone()) {
                        continue;
                    }
                }
                None => {
                    env.insert(trig_atom.loc.clone(), Value::Str(node.0.clone()));
                }
            }
            if tuple.arity() != trig_atom.args.len() {
                continue;
            }
            let mut ok = true;
            for (pat, val) in trig_atom.args.iter().zip(&tuple.args) {
                if !pat.matches(val, &mut env) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let mut body: Vec<Option<Arc<Tuple>>> = vec![None; rule.body.len()];
            body[trigger] = Some(Arc::clone(tuple));
            search_body(
                store, head, ep, rule, trigger, fired_at, &node, env, &mut body, 0, &mut best,
            );
        }
    }
    best
}

/// Binds what the recorded head pins down: the head location variable and
/// any head argument that is a bare, non-assigned variable. This only
/// prunes candidates that would fail the head-equality filter anyway, but
/// it shrinks the search space dramatically (the paper's "guided" top-down
/// search). Returns `None` on contradictory bindings, which cannot happen
/// for a genuinely recorded derivation.
fn prebind_from_head(rule: &Rule, head: &TupleRef) -> Option<Env> {
    let assigned: BTreeSet<&Sym> = rule.assigns.iter().map(|a| &a.var).collect();
    let mut env = Env::new();
    if let Expr::Var(v) = &rule.head.loc {
        if !assigned.contains(v) {
            env.insert(v.clone(), Value::Str(head.node.0.clone()));
        }
    }
    for (expr, val) in rule.head.args.iter().zip(&head.tuple.args) {
        if let Expr::Var(v) = expr {
            if assigned.contains(v) {
                continue;
            }
            match env.get(v) {
                Some(bound) if bound != val => return None,
                Some(_) => {}
                None => {
                    env.insert(v.clone(), val.clone());
                }
            }
        }
    }
    Some(env)
}

/// Depth-first assignment of the remaining body atoms, in body order,
/// keeping the lexicographically least complete body that passes every
/// filter — the engine's own tie-break (matches are scheduled and applied
/// in lexicographic body order).
#[allow(clippy::too_many_arguments)]
fn search_body(
    store: &AnnotationStore,
    head: &TupleRef,
    ep: &EpisodeAnn,
    rule: &Rule,
    trigger: usize,
    fired_at: LogicalTime,
    node: &NodeId,
    env: Env,
    body: &mut Vec<Option<Arc<Tuple>>>,
    atom_idx: usize,
    best: &mut Option<(NodeId, Vec<Arc<Tuple>>)>,
) {
    if atom_idx == rule.body.len() {
        let vec: Vec<Arc<Tuple>> = body
            .iter()
            .map(|s| Arc::clone(s.as_ref().expect("all body slots filled")))
            .collect();
        if let Some((bn, bv)) = best {
            if (&*bn, &*bv) <= (node, &vec) {
                return;
            }
        }
        if candidate_passes(store, head, ep, rule, fired_at, node, &env, &vec) {
            *best = Some((node.clone(), vec));
        }
        return;
    }
    if atom_idx == trigger {
        search_body(
            store, head, ep, rule, trigger, fired_at, node, env, body, atom_idx + 1, best,
        );
        return;
    }
    let atom = &rule.body[atom_idx];
    // Non-trigger atoms of a localized rule join against the firing node's
    // own state; their location variable stays unbound in the engine too.
    let Some(table) = store.tables.get(&(node.clone(), atom.table.clone())) else {
        return;
    };
    let skip_trigger = if atom_idx < trigger && atom.table == rule.body[trigger].table {
        body[trigger].clone()
    } else {
        None
    };
    for candidate in table {
        if skip_trigger.as_deref().is_some_and(|t| **candidate == *t) {
            continue;
        }
        let b = TupleRef::new(node.clone(), Arc::clone(candidate));
        // Visible to the join, still alive at the apply step, and small
        // enough to sit under the recorded minimal height.
        if store.episode_at(&b, fired_at).is_none() {
            continue;
        }
        match store.episode_at(&b, ep.start) {
            Some(e) if e.height < ep.height => {}
            _ => continue,
        }
        if candidate.arity() != atom.args.len() {
            continue;
        }
        let mut env2 = env.clone();
        let mut ok = true;
        for (pat, val) in atom.args.iter().zip(&candidate.args) {
            if !pat.matches(val, &mut env2) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        body[atom_idx] = Some(Arc::clone(candidate));
        search_body(
            store, head, ep, rule, trigger, fired_at, node, env2, body, atom_idx + 1, best,
        );
        body[atom_idx] = None;
    }
}

/// The full filter battery a complete candidate must pass to have been
/// the recorded firing: assignments run, constraints hold, the head comes
/// out identical, the delivery delay fits inside the episode start, and
/// the stored minimal height is exactly reproduced.
#[allow(clippy::too_many_arguments)]
fn candidate_passes(
    store: &AnnotationStore,
    head: &TupleRef,
    ep: &EpisodeAnn,
    rule: &Rule,
    fired_at: LogicalTime,
    node: &NodeId,
    env: &Env,
    body: &[Arc<Tuple>],
) -> bool {
    let mut env = env.clone();
    if let Err(e) = rule.run_assigns(&mut env) {
        // Arithmetic failure suppresses the firing, exactly as in the
        // engine; any other error could not have produced a record.
        debug_assert!(matches!(e, Error::Arith(_)), "non-arith assign error: {e}");
        return false;
    }
    for c in &rule.constraints {
        match c {
            Constraint::Expr(e) => match e.eval(&env) {
                Ok(Value::Bool(true)) => {}
                _ => return false,
            },
            Constraint::Builtin { .. } => {
                unreachable!("builtin-constrained rules are captured in report mode")
            }
        }
    }
    let Ok(head_loc) = rule.head.loc.eval(&env) else {
        return false;
    };
    match head_loc.as_str() {
        Ok(s) if s.as_str() == head.node.as_str() => {}
        _ => return false,
    }
    if rule.head.args.len() != head.tuple.args.len() {
        return false;
    }
    for (expr, want) in rule.head.args.iter().zip(&head.tuple.args) {
        match expr.eval(&env) {
            Ok(got) if got == *want => {}
            _ => return false,
        }
    }
    let delay = if head.node == *node { 0 } else { rule.link_delay };
    if fired_at + delay > ep.start {
        return false;
    }
    let mut height = 0u32;
    for b in body {
        let tref = TupleRef::new(node.clone(), Arc::clone(b));
        match store.episode_at(&tref, ep.start) {
            Some(e) => height = height.max(e.height + 1),
            None => return false,
        }
    }
    height == ep.height
}

impl fmt::Debug for AnnotationStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnnotationStore({})", self.stats())
    }
}

/// A [`ProvenanceSink`] building an [`AnnotationStore`] — the compact
/// sibling of [`GraphRecorder`](crate::graph::GraphRecorder).
#[derive(Clone)]
pub struct AnnotRecorder {
    /// The store under construction.
    pub store: AnnotationStore,
    tracer: dp_trace::Tracer,
    meters: Option<crate::graph::RecorderMeters>,
}

impl AnnotRecorder {
    /// A recorder with an empty store for `program`.
    pub fn new(program: Arc<Program>) -> Self {
        AnnotRecorder {
            store: AnnotationStore::new(program),
            tracer: dp_trace::Tracer::default(),
            meters: crate::graph::RecorderMeters::register("annot"),
        }
    }

    /// A recorder that times its batched folds into `tracer`, mirroring
    /// `GraphRecorder::with_tracer`.
    pub fn with_tracer(program: Arc<Program>, tracer: dp_trace::Tracer) -> Self {
        AnnotRecorder {
            store: AnnotationStore::new(program),
            tracer,
            meters: crate::graph::RecorderMeters::register("annot"),
        }
    }

    /// Finishes recording, returning the store.
    pub fn finish(self) -> AnnotationStore {
        self.store
    }
}

impl fmt::Debug for AnnotRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnnotRecorder({})", self.store.stats())
    }
}

impl ProvenanceSink for AnnotRecorder {
    fn record(&mut self, event: ProvEvent) {
        self.store.record_event(event);
        if let Some(m) = &self.meters {
            m.observe(1, self.store.store.slot_count() as u64);
        }
    }

    fn record_batch(&mut self, events: &mut Vec<ProvEvent>) {
        let span = self.tracer.is_enabled().then(|| {
            (
                self.tracer
                    .span("prov.record_batch", dp_trace::Class::Effort, None),
                events.len() as u64,
            )
        });
        let n = events.len() as u64;
        for event in events.drain(..) {
            self.store.record_event(event);
        }
        if let Some(m) = &self.meters {
            m.observe(n, self.store.store.slot_count() as u64);
        }
        if let Some((span, n)) = span {
            span.end(None, &[("events", n)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphRecorder;
    use crate::invariants::tree_well_formedness_violations;
    use crate::tree::{extract_tree, extract_tree_latest};
    use dp_ndlog::Engine;
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind};

    fn chain_program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new("base", TableKind::ImmutableBase, [("x", FieldType::Int)]));
        reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
        reg.declare(Schema::new("mid", TableKind::Derived, [("x", FieldType::Int)]));
        reg.declare(Schema::new("top", TableKind::Derived, [("x", FieldType::Int)]));
        Program::builder(reg)
            .rules_text(
                "r1 mid(@N, X1) :- base(@N, X), cfg(@N, K), X1 := X + K.\n\
                 r2 top(@N, X2) :- mid(@N, X), X2 := X * 2.",
            )
            .unwrap()
            .build()
            .unwrap()
    }

    /// Runs the same schedule through both backends, returning
    /// (graph, store, node, now).
    fn run_both(
        program: Arc<Program>,
        ops: &[(LogicalTime, &str, Tuple, bool)],
    ) -> (crate::graph::ProvGraph, AnnotationStore, LogicalTime) {
        let mut geng = Engine::new(Arc::clone(&program), GraphRecorder::new());
        let mut aeng = Engine::new(Arc::clone(&program), AnnotRecorder::new(Arc::clone(&program)));
        for (t, n, tup, del) in ops {
            let n = NodeId::new(n);
            if *del {
                geng.schedule_delete(*t, n.clone(), tup.clone()).unwrap();
                aeng.schedule_delete(*t, n, tup.clone()).unwrap();
            } else {
                geng.schedule_insert(*t, n.clone(), tup.clone()).unwrap();
                aeng.schedule_insert(*t, n, tup.clone()).unwrap();
            }
        }
        geng.run().unwrap();
        aeng.run().unwrap();
        let now = geng.now();
        assert_eq!(now, aeng.now());
        (geng.into_sink().finish(), aeng.into_sink().finish(), now)
    }

    #[test]
    fn reconstruction_matches_extraction_on_chain() {
        let ops = [
            (0, "n1", tuple!("cfg", 10), false),
            (5, "n1", tuple!("base", 1), false),
        ];
        let (g, store, now) = run_both(chain_program(), &ops);
        let top = TupleRef::new("n1", tuple!("top", 22));
        let want = extract_tree(&g, &top, now).expect("extracted");
        let got = reconstruct_tree(&store, &top, now).expect("reconstructed");
        assert_eq!(want.render(), got.render());
        assert_eq!(tree_well_formedness_violations(&got), Vec::<String>::new());
    }

    #[test]
    fn reconstruction_answers_past_queries_after_deletion() {
        let ops = [
            (0, "n1", tuple!("cfg", 10), false),
            (5, "n1", tuple!("base", 1), false),
            (50, "n1", tuple!("cfg", 10), true),
        ];
        let (g, store, now) = run_both(chain_program(), &ops);
        let top = TupleRef::new("n1", tuple!("top", 22));
        assert!(extract_tree(&g, &top, now).is_none());
        assert!(reconstruct_tree(&store, &top, now).is_none());
        let want = extract_tree_latest(&g, &top, now).expect("past episode");
        let got = reconstruct_tree_latest(&store, &top, now).expect("past episode");
        assert_eq!(want.render(), got.render());
    }

    #[test]
    fn heights_count_derivation_depth() {
        let ops = [
            (0, "n1", tuple!("cfg", 10), false),
            (5, "n1", tuple!("base", 1), false),
        ];
        let (_, store, now) = run_both(chain_program(), &ops);
        let h = |t: Tuple| store.episode_at(&TupleRef::new("n1", t), now).unwrap().height;
        assert_eq!(h(tuple!("base", 1)), 0);
        assert_eq!(h(tuple!("cfg", 10)), 0);
        assert_eq!(h(tuple!("mid", 11)), 1);
        assert_eq!(h(tuple!("top", 22)), 2);
    }

    #[test]
    fn stats_are_much_smaller_than_graph() {
        let ops = [
            (0, "n1", tuple!("cfg", 10), false),
            (5, "n1", tuple!("base", 1), false),
        ];
        let (g, store, _) = run_both(chain_program(), &ops);
        let gs = g.stats().total();
        let st = store.stats();
        assert_eq!(st.episodes, 4);
        assert_eq!(st.reported, 0);
        assert!(st.total() * 2 < gs, "annot {st:?} vs graph {gs}");
    }
}
