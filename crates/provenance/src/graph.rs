//! The temporal provenance graph (Section 3.2 of the paper).
//!
//! The graph is built incrementally from the engine's event stream: the
//! [`GraphRecorder`] implements [`ProvenanceSink`] and appends vertices as
//! events arrive. It uses the seven vertex types of the DTaP-style graph
//! the paper adopts: INSERT/DELETE, EXIST, DERIVE/UNDERIVE, and
//! APPEAR/DISAPPEAR. The temporal dimension — EXIST intervals and per-event
//! timestamps — is what lets a *past* event serve as the reference
//! (scenario SDN3).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dp_ndlog::{ProvEvent, ProvenanceSink};
use dp_types::{LogicalTime, NodeId, Sym, Tuple, TupleRef};

/// Index of a vertex within a [`ProvGraph`].
pub type VertexId = usize;

/// The seven vertex types of the temporal provenance graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VertexKind {
    /// Base tuple inserted.
    Insert,
    /// Base tuple deleted.
    Delete,
    /// Tuple existed over an interval (`end == None` means "still exists").
    Exist {
        /// Interval end, exclusive; `None` while the tuple is alive.
        end: Option<LogicalTime>,
    },
    /// Tuple derived via a rule.
    Derive {
        /// The rule that fired.
        rule: Sym,
        /// Index of the triggering body tuple within the derive children.
        trigger: usize,
    },
    /// A derivation was invalidated.
    Underive {
        /// The rule whose derivation was invalidated.
        rule: Sym,
    },
    /// Tuple's support became positive.
    Appear,
    /// Tuple's support returned to zero.
    Disappear,
}

impl VertexKind {
    /// A stable short tag, used by the plain-diff baseline's signatures.
    pub fn tag(&self) -> &'static str {
        match self {
            VertexKind::Insert => "INSERT",
            VertexKind::Delete => "DELETE",
            VertexKind::Exist { .. } => "EXIST",
            VertexKind::Derive { .. } => "DERIVE",
            VertexKind::Underive { .. } => "UNDERIVE",
            VertexKind::Appear => "APPEAR",
            VertexKind::Disappear => "DISAPPEAR",
        }
    }
}

/// One vertex of the provenance graph.
#[derive(Clone, Debug)]
pub struct Vertex {
    /// Vertex type (and type-specific payload).
    pub kind: VertexKind,
    /// The node the tuple lives on.
    pub node: NodeId,
    /// The tuple the vertex describes (shared with the engine's interner,
    /// so a graph holds one allocation per distinct tuple).
    pub tuple: Arc<Tuple>,
    /// Event time (for EXIST: interval start).
    pub time: LogicalTime,
    /// Direct causes of this vertex.
    pub children: Vec<VertexId>,
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            VertexKind::Exist { end } => write!(
                f,
                "EXIST({}, {}, [{}, {}))",
                self.node,
                self.tuple,
                self.time,
                end.map_or("∞".to_string(), |t| t.to_string())
            ),
            VertexKind::Derive { rule, .. } => {
                write!(f, "DERIVE({}, {}, {}, t={})", self.node, self.tuple, rule, self.time)
            }
            VertexKind::Underive { rule } => {
                write!(f, "UNDERIVE({}, {}, {}, t={})", self.node, self.tuple, rule, self.time)
            }
            other => write!(f, "{}({}, {}, t={})", other.tag(), self.node, self.tuple, self.time),
        }
    }
}

/// One contiguous lifetime of a tuple: from an APPEAR to the matching
/// DISAPPEAR (or to "now").
#[derive(Clone, Debug)]
pub struct Episode {
    /// The APPEAR vertex.
    pub appear: VertexId,
    /// The EXIST vertex spanning the episode.
    pub exist: VertexId,
    /// The INSERT or DERIVE vertex that caused the appearance.
    pub cause: VertexId,
    /// Additional supports gained during the episode (redundant DERIVEs and
    /// base re-insertions). Not part of extracted trees, but needed to
    /// answer "was this tuple also derivable another way".
    pub extra_support: Vec<VertexId>,
    /// Episode start.
    pub start: LogicalTime,
    /// Episode end (exclusive), if the tuple disappeared.
    pub end: Option<LogicalTime>,
    /// The DISAPPEAR vertex, once closed.
    pub disappear: Option<VertexId>,
}

impl Episode {
    /// True if the episode covers time `t`.
    pub fn covers(&self, t: LogicalTime) -> bool {
        self.start <= t && self.end.is_none_or(|e| t < e)
    }
}

/// The append-only temporal provenance graph.
#[derive(Clone, Debug, Default)]
pub struct ProvGraph {
    vertices: Vec<Vertex>,
    /// All episodes of each located tuple, in start order.
    episodes: BTreeMap<TupleRef, Vec<Episode>>,
    /// Pending cause vertex between an INSERT/DERIVE event and the APPEAR
    /// that immediately follows it in the stream.
    pending_cause: BTreeMap<TupleRef, VertexId>,
    /// Pending negative cause (DELETE/UNDERIVE) before a DISAPPEAR.
    pending_negative: BTreeMap<TupleRef, VertexId>,
}

impl ProvGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// All vertices, indexable by [`VertexId`].
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// A vertex by id.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id]
    }

    /// Total vertex count.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The episodes of a located tuple, in chronological order.
    pub fn episodes(&self, tref: &TupleRef) -> &[Episode] {
        self.episodes.get(tref).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The episode of `tref` covering time `t`, if any.
    pub fn episode_at(&self, tref: &TupleRef, t: LogicalTime) -> Option<&Episode> {
        self.episodes(tref).iter().rev().find(|e| e.covers(t))
    }

    /// The most recent episode of `tref` that started no later than `t`
    /// (used to locate reference events in the past).
    pub fn last_episode_starting_by(&self, tref: &TupleRef, t: LogicalTime) -> Option<&Episode> {
        self.episodes(tref).iter().rev().find(|e| e.start <= t)
    }

    /// Per-kind vertex counts — a quick profile of what the recorder
    /// captured (useful for sizing and for the CLI).
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats::default();
        for v in &self.vertices {
            match v.kind {
                VertexKind::Insert => s.inserts += 1,
                VertexKind::Delete => s.deletes += 1,
                VertexKind::Exist { .. } => s.exists += 1,
                VertexKind::Derive { .. } => s.derives += 1,
                VertexKind::Underive { .. } => s.underives += 1,
                VertexKind::Appear => s.appears += 1,
                VertexKind::Disappear => s.disappears += 1,
            }
        }
        s
    }

    fn push(&mut self, v: Vertex) -> VertexId {
        self.vertices.push(v);
        self.vertices.len() - 1
    }

    /// Creates an INSERT → APPEAR → EXIST chain for a tuple that predates
    /// the start of recording (checkpoint resume). The episode is opened at
    /// time 0 to reflect "existed since before we started watching".
    fn synthesize_boundary_episode(&mut self, tref: &TupleRef, _seen_at: LogicalTime) -> VertexId {
        let insert = self.push(Vertex {
            kind: VertexKind::Insert,
            node: tref.node.clone(),
            tuple: tref.tuple.clone(),
            time: 0,
            children: Vec::new(),
        });
        let appear = self.push(Vertex {
            kind: VertexKind::Appear,
            node: tref.node.clone(),
            tuple: tref.tuple.clone(),
            time: 0,
            children: vec![insert],
        });
        let exist = self.push(Vertex {
            kind: VertexKind::Exist { end: None },
            node: tref.node.clone(),
            tuple: tref.tuple.clone(),
            time: 0,
            children: vec![appear],
        });
        self.episodes.entry(tref.clone()).or_default().push(Episode {
            appear,
            exist,
            cause: insert,
            extra_support: Vec::new(),
            start: 0,
            end: None,
            disappear: None,
        });
        exist
    }

    fn open_exist(&mut self, tref: &TupleRef) -> Option<VertexId> {
        let ep = self.episodes.get(tref)?.last()?;
        if ep.end.is_none() {
            Some(ep.exist)
        } else {
            None
        }
    }

    fn record_event(&mut self, event: ProvEvent) {
        match event {
            ProvEvent::InsertBase { time, node, tuple } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                let id = self.push(Vertex {
                    kind: VertexKind::Insert,
                    node,
                    tuple,
                    time,
                    children: Vec::new(),
                });
                if let Some(ep) = self.episodes.get_mut(&tref).and_then(|v| v.last_mut()) {
                    if ep.end.is_none() {
                        // Base re-inserted while alive: extra support.
                        ep.extra_support.push(id);
                        return;
                    }
                }
                self.pending_cause.insert(tref, id);
            }
            ProvEvent::Derive {
                time,
                node,
                tuple,
                rule,
                fired_at: _,
                body,
                trigger,
                redundant,
            } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                // Children: the EXIST vertices of the body tuples' episodes
                // open at derivation time. A body tuple without an open
                // episode means recording started mid-stream (checkpoint
                // resume); synthesize a boundary episode for it so the
                // graph remains well-formed.
                let mut children: Vec<VertexId> = Vec::with_capacity(body.len());
                for b in &body {
                    let exist = match self.open_exist(b) {
                        Some(e) => e,
                        None => self.synthesize_boundary_episode(b, time),
                    };
                    children.push(exist);
                }
                let id = self.push(Vertex {
                    kind: VertexKind::Derive { rule, trigger },
                    node,
                    tuple,
                    time,
                    children,
                });
                if redundant {
                    if let Some(ep) = self.episodes.get_mut(&tref).and_then(|v| v.last_mut()) {
                        ep.extra_support.push(id);
                    }
                } else {
                    self.pending_cause.insert(tref, id);
                }
            }
            ProvEvent::Appear { time, node, tuple } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                let cause = match self.pending_cause.remove(&tref) {
                    Some(c) => c,
                    // An APPEAR without a recorded cause can only happen if
                    // recording started mid-stream; synthesize an INSERT.
                    None => self.push(Vertex {
                        kind: VertexKind::Insert,
                        node: node.clone(),
                        tuple: tuple.clone(),
                        time,
                        children: Vec::new(),
                    }),
                };
                let appear = self.push(Vertex {
                    kind: VertexKind::Appear,
                    node: node.clone(),
                    tuple: tuple.clone(),
                    time,
                    children: vec![cause],
                });
                let exist = self.push(Vertex {
                    kind: VertexKind::Exist { end: None },
                    node,
                    tuple,
                    time,
                    children: vec![appear],
                });
                self.episodes.entry(tref).or_default().push(Episode {
                    appear,
                    exist,
                    cause,
                    extra_support: Vec::new(),
                    start: time,
                    end: None,
                    disappear: None,
                });
            }
            ProvEvent::DeleteBase { time, node, tuple } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                let id = self.push(Vertex {
                    kind: VertexKind::Delete,
                    node,
                    tuple,
                    time,
                    children: Vec::new(),
                });
                self.pending_negative.insert(tref, id);
            }
            ProvEvent::Underive { time, node, tuple, rule } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                let id = self.push(Vertex {
                    kind: VertexKind::Underive { rule },
                    node,
                    tuple,
                    time,
                    children: Vec::new(),
                });
                self.pending_negative.insert(tref, id);
            }
            ProvEvent::Disappear { time, node, tuple } => {
                let tref = TupleRef::new(node.clone(), tuple.clone());
                let cause = self.pending_negative.remove(&tref);
                let id = self.push(Vertex {
                    kind: VertexKind::Disappear,
                    node,
                    tuple,
                    time,
                    children: cause.into_iter().collect(),
                });
                if let Some(ep) = self.episodes.get_mut(&tref).and_then(|v| v.last_mut()) {
                    if ep.end.is_none() {
                        ep.end = Some(time);
                        ep.disappear = Some(id);
                        let exist = ep.exist;
                        if let VertexKind::Exist { end } = &mut self.vertices[exist].kind {
                            *end = Some(time);
                        }
                    }
                }
            }
        }
    }
}

/// Per-kind vertex counts of a [`ProvGraph`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// INSERT vertices.
    pub inserts: u64,
    /// DELETE vertices.
    pub deletes: u64,
    /// EXIST vertices.
    pub exists: u64,
    /// DERIVE vertices.
    pub derives: u64,
    /// UNDERIVE vertices.
    pub underives: u64,
    /// APPEAR vertices.
    pub appears: u64,
    /// DISAPPEAR vertices.
    pub disappears: u64,
}

impl GraphStats {
    /// Total vertices.
    pub fn total(&self) -> u64 {
        self.inserts
            + self.deletes
            + self.exists
            + self.derives
            + self.underives
            + self.appears
            + self.disappears
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vertices (INSERT {}, DELETE {}, EXIST {}, DERIVE {}, UNDERIVE {}, \
             APPEAR {}, DISAPPEAR {})",
            self.total(),
            self.inserts,
            self.deletes,
            self.exists,
            self.derives,
            self.underives,
            self.appears,
            self.disappears
        )
    }
}

/// A [`ProvenanceSink`] building a [`ProvGraph`].
///
/// This is the paper's *provenance recorder* in "infer" mode (Section 5):
/// dependencies are read off the engine's derivation stream directly.
#[derive(Clone, Debug, Default)]
pub struct GraphRecorder {
    /// The graph under construction.
    pub graph: ProvGraph,
    tracer: dp_trace::Tracer,
    meters: Option<RecorderMeters>,
}

/// Pre-resolved handles into the process-wide metrics registry, `None`
/// when `DP_METRICS` is off (the disabled path then costs one branch per
/// batch). Labeled `backend="graph"` so graph and annotation recording
/// stay comparable on one scrape.
#[derive(Clone, Debug)]
pub(crate) struct RecorderMeters {
    events: dp_metrics::Counter,
    live: dp_metrics::Gauge,
}

impl RecorderMeters {
    /// Resolves the per-backend handles when the global registry is live.
    pub(crate) fn register(backend: &'static str) -> Option<RecorderMeters> {
        let m = dp_metrics::Metrics::global();
        m.is_enabled().then(|| RecorderMeters {
            events: m.counter_with(
                "dp_prov_events_total",
                "Provenance events folded into a recorder by backend.",
                &[("backend", backend)],
            ),
            live: m.gauge_with(
                "dp_prov_live_records",
                "Records held by the most recent recorder by backend \
                 (graph: vertices; annot: annotated tuple slots).",
                &[("backend", backend)],
            ),
        })
    }

    /// Folds one delivery of `n` events and the recorder's current size.
    pub(crate) fn observe(&self, n: u64, live: u64) {
        self.events.add(n);
        self.live.set(live as i64);
    }
}

impl GraphRecorder {
    /// A recorder with an empty graph.
    pub fn new() -> Self {
        GraphRecorder {
            graph: ProvGraph::default(),
            tracer: dp_trace::Tracer::default(),
            meters: RecorderMeters::register("graph"),
        }
    }

    /// A recorder that times its batched folds into `tracer` (as
    /// `Class::Effort` `prov.record_batch` spans — batch structure is a
    /// property of the engine configuration, not of the program).
    pub fn with_tracer(tracer: dp_trace::Tracer) -> Self {
        GraphRecorder {
            graph: ProvGraph::default(),
            tracer,
            meters: RecorderMeters::register("graph"),
        }
    }

    /// Finishes recording, returning the graph.
    pub fn finish(self) -> ProvGraph {
        self.graph
    }
}

impl ProvenanceSink for GraphRecorder {
    fn record(&mut self, event: ProvEvent) {
        self.graph.record_event(event);
        if let Some(m) = &self.meters {
            m.observe(1, self.graph.len() as u64);
        }
    }

    /// Batched delivery from the engine's delta flush. The batch arrives
    /// in stream order and is folded into the graph one event at a time,
    /// in order — the resulting graph is identical to the one built by
    /// per-event delivery.
    fn record_batch(&mut self, events: &mut Vec<ProvEvent>) {
        let span = self.tracer.is_enabled().then(|| {
            (
                self.tracer
                    .span("prov.record_batch", dp_trace::Class::Effort, None),
                events.len() as u64,
            )
        });
        let n = events.len() as u64;
        for event in events.drain(..) {
            self.graph.record_event(event);
        }
        if let Some(m) = &self.meters {
            m.observe(n, self.graph.len() as u64);
        }
        if let Some((span, n)) = span {
            span.end(None, &[("events", n)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_ndlog::{Engine, Program};
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind};
    use std::sync::Arc;

    fn fig4_program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new(
            "a",
            TableKind::ImmutableBase,
            [("x", FieldType::Int), ("y", FieldType::Int)],
        ));
        reg.declare(Schema::new(
            "b",
            TableKind::MutableBase,
            [("x", FieldType::Int), ("y", FieldType::Int), ("z", FieldType::Int)],
        ));
        reg.declare(Schema::new(
            "c",
            TableKind::Derived,
            [("x", FieldType::Int), ("y2", FieldType::Int), ("z1", FieldType::Int)],
        ));
        Program::builder(reg)
            .rules_text(
                "rc c(@N, X, Y2, Z1) :- a(@N, X, Y), b(@N, X, Y, Z), Y2 := Y * Y, Z1 := Z + 1.",
            )
            .unwrap()
            .build()
            .unwrap()
    }

    fn run_fig4() -> (ProvGraph, NodeId) {
        let mut eng = Engine::new(fig4_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("a", 1, 2)).unwrap();
        eng.schedule_insert(0, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        (eng.into_sink().finish(), n)
    }

    #[test]
    fn derivation_builds_insert_appear_exist_chain() {
        let (g, n) = run_fig4();
        let c = TupleRef::new(n.clone(), tuple!("c", 1, 4, 4));
        let eps = g.episodes(&c);
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert!(matches!(g.vertex(ep.exist).kind, VertexKind::Exist { end: None }));
        assert!(matches!(g.vertex(ep.appear).kind, VertexKind::Appear));
        match &g.vertex(ep.cause).kind {
            VertexKind::Derive { rule, trigger } => {
                assert_eq!(rule, &dp_types::Sym::new("rc"));
                assert_eq!(*trigger, 1);
            }
            other => panic!("expected DERIVE, got {other:?}"),
        }
        // The derive's children are the EXIST vertices of a and b.
        let derive = g.vertex(ep.cause);
        assert_eq!(derive.children.len(), 2);
        let tables: Vec<_> = derive
            .children
            .iter()
            .map(|&id| g.vertex(id).tuple.table.as_str().to_string())
            .collect();
        assert_eq!(tables, ["a", "b"]);
    }

    #[test]
    fn deletion_closes_episode_with_interval() {
        let mut eng = Engine::new(fig4_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("a", 1, 2)).unwrap();
        eng.schedule_insert(0, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        eng.schedule_delete(100, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        let g = eng.into_sink().finish();
        let b = TupleRef::new(n.clone(), tuple!("b", 1, 2, 3));
        let ep = &g.episodes(&b)[0];
        assert!(ep.end.is_some());
        assert!(matches!(g.vertex(ep.exist).kind, VertexKind::Exist { end: Some(_) }));
        // The derived c also disappeared, via an UNDERIVE.
        let c = TupleRef::new(n, tuple!("c", 1, 4, 4));
        let cep = &g.episodes(&c)[0];
        let dis = cep.disappear.expect("c disappeared");
        let dis_v = g.vertex(dis);
        assert_eq!(dis_v.children.len(), 1);
        assert!(matches!(g.vertex(dis_v.children[0]).kind, VertexKind::Underive { .. }));
    }

    #[test]
    fn episode_at_respects_time() {
        let mut eng = Engine::new(fig4_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        let t_alive = eng.now();
        eng.schedule_delete(100, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        let t_dead = eng.now() + 1;
        let g = eng.into_sink().finish();
        let b = TupleRef::new(n, tuple!("b", 1, 2, 3));
        assert!(g.episode_at(&b, t_alive).is_some());
        assert!(g.episode_at(&b, t_dead).is_none());
        assert!(g.last_episode_starting_by(&b, t_dead).is_some());
    }

    #[test]
    fn stats_count_every_vertex_kind() {
        let mut eng = Engine::new(fig4_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("a", 1, 2)).unwrap();
        eng.schedule_insert(0, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        eng.schedule_delete(100, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        let g = eng.into_sink().finish();
        let s = g.stats();
        assert_eq!(s.total() as usize, g.len());
        assert_eq!(s.inserts, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.derives, 1);
        assert_eq!(s.underives, 1);
        assert_eq!(s.appears, 3);
        assert_eq!(s.disappears, 2); // b and the cascaded c
        assert!(s.to_string().contains("DERIVE 1"));
    }

    #[test]
    fn reappearance_creates_second_episode() {
        let mut eng = Engine::new(fig4_program(), GraphRecorder::new());
        let n = NodeId::new("n1");
        eng.schedule_insert(0, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        eng.schedule_delete(10, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        eng.schedule_insert(20, n.clone(), tuple!("b", 1, 2, 3)).unwrap();
        eng.run().unwrap();
        let g = eng.into_sink().finish();
        let b = TupleRef::new(n, tuple!("b", 1, 2, 3));
        let eps = g.episodes(&b);
        assert_eq!(eps.len(), 2);
        assert!(eps[0].end.is_some());
        assert!(eps[1].end.is_none());
    }
}
