//! HyperLogLog distinct-count sketches.
//!
//! A replay pushes hundreds of thousands of tuples through the engine;
//! counting how many of them are *distinct* exactly would mean keeping a
//! set as large as the data. HyperLogLog (Flajolet et al., 2007) answers
//! the same question in [`HLL_REGISTERS`] bytes with a known accuracy: the
//! standard error of the estimate is `1.04 / sqrt(m)` — about **3.25%**
//! at the `m = 1024` registers used here — independent of the true
//! cardinality. The `dp-metrics` property tests pin that bound at 1e2,
//! 1e4, and 1e6 distinct items.
//!
//! # How it works
//!
//! Each item is hashed to 64 uniform bits (FNV-1a over canonical bytes —
//! the same [`dp_types::codec::fnv64`] the shard assignment uses, so no
//! new hash primitive enters the stack). The top [`HLL_PRECISION`] bits
//! pick one of `m` registers; the register keeps the maximum over items of
//! `rho` = (position of the first set bit in the remaining 54 bits). A
//! register value of `k` is evidence of roughly `2^k` distinct items
//! having landed there; the harmonic mean across registers — with the
//! standard small-range linear-counting correction — gives the estimate.
//!
//! # Concurrency and merging
//!
//! Registers are `AtomicU8`s updated with `fetch_max`, so concurrent
//! observers never need a lock and the final register state is independent
//! of interleaving — max is commutative and associative. For the same
//! reason, merging two sketches (element-wise register max) is *exactly*
//! the sketch of the union of their item sets: `sketch(A) ∪ sketch(B) =
//! sketch(A ∪ B)`, associatively. The property suite pins both laws.

use std::sync::atomic::{AtomicU8, Ordering};

use dp_types::codec::fnv64;

/// Number of index bits: registers = `2^HLL_PRECISION`.
pub const HLL_PRECISION: u32 = 10;

/// Number of registers per sketch (1024 → ~3.25% standard error).
pub const HLL_REGISTERS: usize = 1 << HLL_PRECISION;

/// A lock-free HyperLogLog sketch cell.
#[derive(Debug)]
pub struct HllCell {
    registers: Vec<AtomicU8>,
}

impl Default for HllCell {
    fn default() -> Self {
        Self::new()
    }
}

impl HllCell {
    /// An empty sketch.
    pub fn new() -> Self {
        HllCell {
            registers: (0..HLL_REGISTERS).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Observes an item by its (uniform) 64-bit hash.
    pub fn observe_hash(&self, h: u64) {
        let idx = (h >> (64 - HLL_PRECISION)) as usize;
        let rest = h << HLL_PRECISION;
        // rho: 1-based position of the first set bit among the remaining
        // 64 - P bits; an all-zero remainder saturates at its maximum.
        let rho = (rest.leading_zeros() + 1).min(64 - HLL_PRECISION + 1) as u8;
        self.registers[idx].fetch_max(rho, Ordering::Relaxed);
    }

    /// Observes a byte-string item.
    pub fn observe_bytes(&self, bytes: &[u8]) {
        self.observe_hash(fnv64(bytes));
    }

    /// Observes a `u64` item (hashed over its little-endian bytes).
    pub fn observe_u64(&self, v: u64) {
        self.observe_hash(fnv64(&v.to_le_bytes()));
    }

    /// A copy of the raw registers.
    pub fn registers(&self) -> Vec<u8> {
        self.registers
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds another sketch's registers in (element-wise max = set union).
    pub fn merge_registers(&self, other: &[u8]) {
        for (mine, theirs) in self.registers.iter().zip(other) {
            mine.fetch_max(*theirs, Ordering::Relaxed);
        }
    }

    /// The current cardinality estimate.
    pub fn estimate(&self) -> f64 {
        estimate(&self.registers())
    }
}

/// The HyperLogLog estimator over a register array: bias-corrected
/// harmonic mean, with the linear-counting fallback in the small range
/// (raw estimate ≤ 2.5·m with empty registers remaining), where linear
/// counting is the more accurate estimator.
pub fn estimate(registers: &[u8]) -> f64 {
    let m = registers.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let alpha = match registers.len() {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m),
    };
    let sum: f64 = registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
    let raw = alpha * m * m / sum;
    let zeros = registers.iter().filter(|&&r| r == 0).count();
    if raw <= 2.5 * m && zeros > 0 {
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

/// Merges two register arrays into a fresh one (element-wise max).
pub fn merged(a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter().zip(b).map(|(&x, &y)| x.max(y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = HllCell::new();
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let s = HllCell::new();
        for _ in 0..10_000 {
            s.observe_u64(42);
        }
        let est = s.estimate();
        assert!((0.5..=2.0).contains(&est), "single item estimated {est}");
    }

    #[test]
    fn observe_is_idempotent_on_registers() {
        let a = HllCell::new();
        let b = HllCell::new();
        for v in 0..100u64 {
            a.observe_u64(v);
            b.observe_u64(v);
            b.observe_u64(v);
        }
        assert_eq!(a.registers(), b.registers());
    }
}
