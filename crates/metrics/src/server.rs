//! A std-only HTTP `/metrics` endpoint.
//!
//! The registry must be scrapeable while a replay or sim sweep is running,
//! and the container has no HTTP crate — so this is a deliberately small
//! HTTP/1.1 server on [`std::net::TcpListener`]: one accept thread,
//! requests handled serially (a scrape is a few kilobytes; Prometheus
//! scrapes one target at a time anyway), connections closed after each
//! response.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition 0.0.4,
//! * `GET /metrics.json` — the JSON snapshot shape,
//! * `GET /healthz` — liveness probe (`ok`),
//! * `GET /shutdown` — requests a clean stop; the accept loop exits after
//!   responding and [`MetricsServer::stop_requested`] turns true so the
//!   driving process can join and exit.
//!
//! The accept loop polls a non-blocking listener every few milliseconds so
//! a shutdown request (from HTTP or from [`MetricsServer::shutdown`]) is
//! honored promptly without platform signal machinery.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{render_prometheus, Metrics};

/// A running `/metrics` endpoint. Dropping the handle without calling
/// [`MetricsServer::shutdown`] leaves the serving thread running for the
/// life of the process.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `metrics` on a background thread.
    pub fn serve(metrics: Metrics, addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dp-metrics-http".into())
            .spawn(move || accept_loop(listener, metrics, stop_thread))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a stop was requested (via `/shutdown` or
    /// [`MetricsServer::shutdown`]).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, metrics: Metrics, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, &metrics, &stop),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, metrics: &Metrics, stop: &Arc<AtomicBool>) {
    // The accepted socket may inherit the listener's non-blocking mode on
    // some platforms; force blocking reads bounded by a timeout instead.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    match path.as_str() {
        "/metrics" => {
            let body = render_prometheus(&metrics.snapshot());
            let _ = respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/metrics.json" => {
            let body = metrics.snapshot().to_json();
            let _ = respond(&mut stream, 200, "application/json", &body);
        }
        "/healthz" => {
            let _ = respond(&mut stream, 200, "text/plain", "ok\n");
        }
        "/shutdown" => {
            let _ = respond(&mut stream, 200, "text/plain", "shutting down\n");
            stop.store(true, Ordering::SeqCst);
        }
        _ => {
            let _ = respond(&mut stream, 404, "text/plain", "not found\n");
        }
    }
}

/// Reads the request head (up to the blank line, capped at 16 KiB and
/// ~2 s) and returns the GET path, `None` on anything malformed.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > 16 * 1024 || Instant::now() > deadline {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; routes here take none.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_exposition;

    /// A minimal scrape client over raw `TcpStream` — the same shape the
    /// smoke test and the scrape-under-load test use.
    pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: dp\r\nConnection: close\r\n\r\n")?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        Ok((status, body))
    }

    #[test]
    fn serves_scrapes_and_shuts_down() {
        let m = Metrics::enabled();
        m.counter("dp_test_total", "a counter").add(42);
        let server = MetricsServer::serve(m.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        validate_exposition(&body).unwrap();
        assert!(body.contains("dp_test_total 42"));

        let (status, body) = http_get(addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"dp_test_total\""));

        let (status, _) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        let (status, _) = http_get(addr, "/shutdown").unwrap();
        assert_eq!(status, 200);
        assert!(server.stop_requested());
        server.shutdown();
        // After shutdown the port no longer accepts.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn scrape_sees_live_updates() {
        let m = Metrics::enabled();
        let server = MetricsServer::serve(m.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let c = m.counter("dp_live_total", "live updates");
        for i in 1..=3u64 {
            c.inc();
            let (_, body) = http_get(addr, "/metrics").unwrap();
            assert!(body.contains(&format!("dp_live_total {i}")));
        }
        server.shutdown();
    }
}
