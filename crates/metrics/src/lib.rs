//! Live, process-wide metrics for the DiffProv stack.
//!
//! `dp-trace` (PR 5) answers *"what happened during that run?"* — its
//! aggregate is drained once, after the fact. This crate answers *"what is
//! happening right now?"*: a typed metric registry that every layer updates
//! as it works and that can be scraped at any moment, concurrently, without
//! pausing the workload. Four metric types cover the stack's needs:
//!
//! * **counters** — monotonic event totals (`AtomicU64`),
//! * **gauges** — instantaneous levels (`AtomicI64`),
//! * **histograms** — log2-bucketed distributions sharing the exact bucket
//!   layout of [`dp_trace::SpanStat`] (bucket `i` counts values in
//!   `[2^(i-1), 2^i)`, bucket 0 is `[0, 1)`, [`HIST_BUCKETS`] buckets), so
//!   a scrape and a drained trace aggregate bucket identically,
//! * **HLL sketches** — HyperLogLog cardinality estimators (see [`hll`])
//!   for "how many *distinct* flows/tuples/seeds" questions that exact
//!   counting cannot answer at engine scale.
//!
//! # The disabled fast path
//!
//! Like [`dp_trace::Tracer`], a [`Metrics`] handle is an
//! `Option<Arc<Registry>>`: the disabled handle is `None`, every
//! instrument handle minted from it is a `None` too, and every update on a
//! disabled instrument is one branch on an `Option` — no allocation, no
//! atomics, no locks. The `DP_METRICS` environment knob (read once per
//! process, like every other `DP_*` knob) selects the default for
//! [`Metrics::global`], which instrumented layers fall back to when no
//! handle was injected explicitly.
//!
//! # Concurrency and determinism
//!
//! Registration (first use of a name) takes a mutex; updates are lock-free
//! atomic ops on handles cached by the instrumented layer. Metrics are
//! strictly *passive*: enabling them changes no schedule, no join order,
//! no event stream — the differential suites prove the provenance stream
//! and trace skeleton stay bit-identical under `DP_METRICS=1`. Within the
//! registry itself there are two determinism classes, mirroring
//! `dp-trace`'s skeleton-vs-effort split: counts derived from the event
//! stream (engine semantic counters, HLL register contents) are
//! reproducible across runs and configurations, while latency histograms
//! and queue-depth gauges are wall-clock effort and legitimately vary.
//!
//! # Merging
//!
//! [`Metrics::absorb`] folds a [`Snapshot`] into a registry — counters and
//! histograms add, gauges add (they meter disjoint sources when merging
//! per-shard or per-run registries), HLL sketches take the register-wise
//! max, which is exactly set union on the sketched multiset. All maps are
//! `BTreeMap`s, so a fold of the same snapshots in any order produces the
//! identical merged snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hll;

mod expose;
mod server;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use expose::{render_prometheus, validate_exposition};
pub use hll::{HllCell, HLL_PRECISION, HLL_REGISTERS};
pub use server::MetricsServer;

/// Number of log2 buckets in a histogram — shared with
/// [`dp_trace::SpanStat`] so both systems bucket identically.
pub const HIST_BUCKETS: usize = dp_trace::HIST_BUCKETS;

/// The histogram bucket a value falls into (the `dp-trace` layout).
pub fn bucket_index(v: u64) -> usize {
    dp_trace::SpanStat::bucket_index(v)
}

/// What a metric family measures — fixed at first registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event total.
    Counter,
    /// Instantaneous signed level.
    Gauge,
    /// Log2 histogram of durations, recorded in nanoseconds and exposed
    /// in seconds (Prometheus convention).
    TimeHistogram,
    /// Log2 histogram of dimensionless sizes (batch depths, tree sizes).
    SizeHistogram,
    /// HyperLogLog distinct-count sketch, exposed as a gauge holding the
    /// cardinality estimate.
    Hll,
}

impl MetricKind {
    /// Lowercase tag used in JSON output.
    pub fn tag(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::TimeHistogram => "time_histogram",
            MetricKind::SizeHistogram => "size_histogram",
            MetricKind::Hll => "hll",
        }
    }
}

/// Shared histogram cell: lock-free log2 buckets plus count and sum.
#[derive(Debug)]
pub struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// The shared storage behind one labeled series.
#[derive(Clone, Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Hist(Arc<HistCell>),
    Hll(Arc<HllCell>),
}

/// One metric family: a help string, a kind, and its labeled series.
#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Cell>,
}

/// The mutable registry state: families keyed by metric name.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    fn cell(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Cell {
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric `{name}` registered as {:?} and {:?}",
            fam.kind,
            kind
        );
        fam.series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
                MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicI64::new(0))),
                MetricKind::TimeHistogram | MetricKind::SizeHistogram => {
                    Cell::Hist(Arc::new(HistCell::new()))
                }
                MetricKind::Hll => Cell::Hll(Arc::new(HllCell::new())),
            })
            .clone()
    }
}

/// A cheap, cloneable handle to the process registry (or to nothing).
///
/// The disabled handle mints no-op instruments whose every update is a
/// single `Option` branch — the same ~zero disabled cost contract as
/// [`dp_trace::Tracer`].
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

fn env_metrics_enabled() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("DP_METRICS")
            .map(|v| !matches!(v.as_str(), "" | "0" | "off"))
            .unwrap_or(false)
    })
}

impl Metrics {
    /// A handle that records nothing at ~zero cost.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// A handle backed by a fresh, private registry.
    pub fn enabled() -> Self {
        Metrics {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// Enabled iff the `DP_METRICS` environment knob is truthy (read once
    /// per process; `0`, `off`, and empty mean disabled).
    pub fn from_env() -> Self {
        if env_metrics_enabled() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        }
    }

    /// The process-wide default handle: one shared registry when
    /// `DP_METRICS` is truthy, the disabled handle otherwise. Layers
    /// without an explicitly injected handle fall back to this.
    pub fn global() -> &'static Metrics {
        static GLOBAL: OnceLock<Metrics> = OnceLock::new();
        GLOBAL.get_or_init(Metrics::from_env)
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Two handles sharing one registry.
    pub fn same_registry(&self, other: &Metrics) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.inner.as_ref().map(|r| {
            match r.cell(name, help, MetricKind::Counter, labels) {
                Cell::Counter(c) => c,
                _ => unreachable!(),
            }
        }))
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.inner.as_ref().map(|r| {
            match r.cell(name, help, MetricKind::Gauge, labels) {
                Cell::Gauge(g) => g,
                _ => unreachable!(),
            }
        }))
    }

    /// Registers (or finds) an unlabeled duration histogram (values in
    /// nanoseconds, exposed in seconds).
    pub fn time_histogram(&self, name: &str, help: &str) -> Histogram {
        self.time_histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled duration histogram series.
    pub fn time_histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| {
            match r.cell(name, help, MetricKind::TimeHistogram, labels) {
                Cell::Hist(h) => h,
                _ => unreachable!(),
            }
        }))
    }

    /// Registers (or finds) an unlabeled size histogram (dimensionless).
    pub fn size_histogram(&self, name: &str, help: &str) -> Histogram {
        self.size_histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled size histogram series.
    pub fn size_histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| {
            match r.cell(name, help, MetricKind::SizeHistogram, labels) {
                Cell::Hist(h) => h,
                _ => unreachable!(),
            }
        }))
    }

    /// Registers (or finds) an unlabeled HLL distinct-count sketch.
    pub fn hll(&self, name: &str, help: &str) -> Hll {
        self.hll_with(name, help, &[])
    }

    /// Registers (or finds) a labeled HLL sketch series.
    pub fn hll_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Hll {
        Hll(self.inner.as_ref().map(|r| {
            match r.cell(name, help, MetricKind::Hll, labels) {
                Cell::Hll(h) => h,
                _ => unreachable!(),
            }
        }))
    }

    /// A point-in-time copy of every family and series (empty when
    /// disabled). Safe to call while other threads keep updating.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(reg) = &self.inner else { return snap };
        let families = reg.families.lock().unwrap();
        for (name, fam) in families.iter() {
            let mut series = BTreeMap::new();
            for (labels, cell) in &fam.series {
                let point = match cell {
                    Cell::Counter(c) => Point::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => Point::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Hist(h) => Point::Histogram(HistPoint {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    }),
                    Cell::Hll(h) => Point::Hll(HllPoint {
                        registers: h.registers(),
                    }),
                };
                series.insert(labels.clone(), point);
            }
            snap.families.insert(
                name.clone(),
                FamilySnap {
                    help: fam.help.clone(),
                    kind: fam.kind,
                    series,
                },
            );
        }
        snap
    }

    /// Folds a snapshot into this registry: counters and histograms add,
    /// gauges add, HLL registers take the element-wise max (set union).
    /// No-op on a disabled handle. Absorbing snapshots in any order
    /// yields the identical merged state.
    pub fn absorb(&self, snap: &Snapshot) {
        let Some(reg) = &self.inner else { return };
        for (name, fam) in &snap.families {
            for (labels, point) in &fam.series {
                let labels_ref: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let cell = reg.cell(name, &fam.help, fam.kind, &labels_ref);
                match (cell, point) {
                    (Cell::Counter(c), Point::Counter(v)) => {
                        c.fetch_add(*v, Ordering::Relaxed);
                    }
                    (Cell::Gauge(g), Point::Gauge(v)) => {
                        g.fetch_add(*v, Ordering::Relaxed);
                    }
                    (Cell::Hist(h), Point::Histogram(p)) => {
                        for (b, v) in h.buckets.iter().zip(&p.buckets) {
                            b.fetch_add(*v, Ordering::Relaxed);
                        }
                        h.count.fetch_add(p.count, Ordering::Relaxed);
                        h.sum.fetch_add(p.sum, Ordering::Relaxed);
                    }
                    (Cell::Hll(h), Point::Hll(p)) => h.merge_registers(&p.registers),
                    _ => unreachable!("kind checked at registration"),
                }
            }
        }
    }
}

/// Handle to a monotonic counter (no-op when minted from a disabled
/// [`Metrics`]).
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Handle to an instantaneous gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by a signed delta.
    pub fn add(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raises the level to `v` if it is below it.
    pub fn raise_to(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// Handle to a log2 histogram (time- or size-flavored).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether observing has any effect (lets callers skip computing an
    /// expensive observation, e.g. taking a clock reading, when disabled).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one value (nanoseconds for time histograms, raw units for
    /// size histograms).
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Records an elapsed [`std::time::Duration`] in nanoseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        if self.0.is_some() {
            self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Handle to a HyperLogLog distinct-count sketch.
#[derive(Clone, Debug, Default)]
pub struct Hll(Option<Arc<HllCell>>);

impl Hll {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Hll(None)
    }

    /// Whether observing has any effect (lets callers skip hashing when
    /// disabled).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Observes an item by its precomputed 64-bit hash. The hash must be
    /// uniform (FNV-1a over the item's canonical bytes is what every
    /// caller in the stack uses).
    pub fn observe_hash(&self, h: u64) {
        if let Some(c) = &self.0 {
            c.observe_hash(h);
        }
    }

    /// Observes a byte-string item (FNV-1a hashed).
    pub fn observe_bytes(&self, bytes: &[u8]) {
        if let Some(c) = &self.0 {
            c.observe_bytes(bytes);
        }
    }

    /// Observes a `u64` item (little-endian FNV-1a hashed).
    pub fn observe_u64(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.observe_u64(v);
        }
    }
}

/// Point-in-time copy of one histogram series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistPoint {
    /// Per-bucket observation counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (nanoseconds for time histograms).
    pub sum: u64,
}

impl HistPoint {
    /// The sum interpreted as seconds (time histograms record ns).
    pub fn sum_secs(&self) -> f64 {
        self.sum as f64 / 1e9
    }
}

/// Point-in-time copy of one HLL series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HllPoint {
    /// The raw registers ([`HLL_REGISTERS`] entries).
    pub registers: Vec<u8>,
}

impl HllPoint {
    /// The cardinality estimate over the copied registers.
    pub fn estimate(&self) -> f64 {
        hll::estimate(&self.registers)
    }
}

/// One sampled series value.
#[derive(Clone, Debug, PartialEq)]
pub enum Point {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistPoint),
    /// HLL registers.
    Hll(HllPoint),
}

/// Point-in-time copy of one metric family.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnap {
    /// The help string supplied at registration.
    pub help: String,
    /// The family's kind.
    pub kind: MetricKind,
    /// Every labeled series, keyed by its sorted-at-registration label
    /// pairs (the empty vec is the unlabeled series).
    pub series: BTreeMap<Vec<(String, String)>, Point>,
}

/// A point-in-time copy of a whole registry. Ordered maps throughout, so
/// equality and rendered output are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Families keyed by metric name.
    pub families: BTreeMap<String, FamilySnap>,
}

impl Snapshot {
    /// Looks up one series' point.
    pub fn point(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Point> {
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.families.get(name)?.series.get(&key)
    }

    /// An unlabeled (or labeled) counter's total, 0 when absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.point(name, labels) {
            Some(Point::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's level, 0 when absent.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.point(name, labels) {
            Some(Point::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// A histogram's state, when present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistPoint> {
        match self.point(name, labels) {
            Some(Point::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// An HLL series' cardinality estimate, 0.0 when absent.
    pub fn hll_estimate(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.point(name, labels) {
            Some(Point::Hll(h)) => h.estimate(),
            _ => 0.0,
        }
    }

    /// Renders the snapshot as a JSON object (hand-rolled, like every
    /// other JSON emitter in the stack): metric name → `{kind, help,
    /// series: [{labels, value|…}]}`.
    pub fn to_json(&self) -> String {
        expose::snapshot_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("c_total", "help");
        c.inc();
        c.add(41);
        let g = m.gauge("g", "help");
        g.set(7);
        let h = m.time_histogram("h_seconds", "help");
        assert!(!h.is_live());
        h.observe(123);
        let s = m.hll("s", "help");
        s.observe_u64(9);
        assert_eq!(m.snapshot(), Snapshot::default());
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let m = Metrics::enabled();
        let c = m.counter_with("req_total", "requests", &[("kind", "a")]);
        c.inc();
        c.add(2);
        m.counter_with("req_total", "requests", &[("kind", "b")]).inc();
        let g = m.gauge("depth", "queue depth");
        g.set(5);
        g.add(-2);
        g.raise_to(4);
        let h = m.size_histogram("batch", "batch sizes");
        h.observe(0);
        h.observe(1);
        h.observe(1024);

        let snap = m.snapshot();
        assert_eq!(snap.counter_value("req_total", &[("kind", "a")]), 3);
        assert_eq!(snap.counter_value("req_total", &[("kind", "b")]), 1);
        assert_eq!(snap.gauge_value("depth", &[]), 4);
        let hp = snap.histogram("batch", &[]).unwrap();
        assert_eq!(hp.count, 3);
        assert_eq!(hp.sum, 1025);
        assert_eq!(hp.buckets[bucket_index(0)], 1);
        assert_eq!(hp.buckets[bucket_index(1)], 1);
        assert_eq!(hp.buckets[bucket_index(1024)], 1);
    }

    #[test]
    fn same_name_same_cell() {
        let m = Metrics::enabled();
        let a = m.counter("shared_total", "x");
        let b = m.counter("shared_total", "x");
        a.inc();
        b.inc();
        assert_eq!(m.snapshot().counter_value("shared_total", &[]), 2);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let m = Metrics::enabled();
        m.counter("twice", "x");
        m.gauge("twice", "x");
    }

    #[test]
    fn absorb_merges_deterministically() {
        let build = |c: u64, hv: u64, hll_lo: u64| {
            let m = Metrics::enabled();
            m.counter("c_total", "c").add(c);
            m.gauge("g", "g").set(c as i64);
            m.size_histogram("h", "h").observe(hv);
            let s = m.hll("s", "s");
            for v in hll_lo..hll_lo + 50 {
                s.observe_u64(v);
            }
            m.snapshot()
        };
        let a = build(3, 2, 0);
        let b = build(5, 9, 25); // overlaps a's items 25..50

        let ab = Metrics::enabled();
        ab.absorb(&a);
        ab.absorb(&b);
        let ba = Metrics::enabled();
        ba.absorb(&b);
        ba.absorb(&a);
        let merged = ab.snapshot();
        assert_eq!(merged, ba.snapshot(), "absorb order must not matter");

        assert_eq!(merged.counter_value("c_total", &[]), 8);
        assert_eq!(merged.gauge_value("g", &[]), 8);
        let h = merged.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 11);
        // Union of 0..50 and 25..75 is 75 distinct items; the sketch's
        // estimate must land near that, not near the sum of the parts.
        let est = merged.hll_estimate("s", &[]);
        assert!((est - 75.0).abs() < 8.0, "union estimate {est} far from 75");
    }

    #[test]
    fn global_respects_env_default_off() {
        // The test harness does not set DP_METRICS for this binary unless
        // the check.sh leg does; either way the global handle is coherent
        // with the env knob.
        let enabled = std::env::var("DP_METRICS")
            .map(|v| !matches!(v.as_str(), "" | "0" | "off"))
            .unwrap_or(false);
        assert_eq!(Metrics::global().is_enabled(), enabled);
    }
}
