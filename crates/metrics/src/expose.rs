//! Exposition: Prometheus text format 0.0.4 and the JSON snapshot shape.
//!
//! Both renderers walk a [`Snapshot`], never the live registry, so a
//! scrape is one brief registration-mutex hold followed by pure
//! formatting. Output order is the snapshot's `BTreeMap` order —
//! deterministic for a given registry state.
//!
//! Histograms render in the Prometheus cumulative-bucket convention:
//! bucket `i` of the log2 layout covers values in `[2^(i-1), 2^i)`, so
//! its inclusive upper bound is `2^i - 1` — nanoseconds for time
//! histograms (exposed as seconds, per Prometheus convention) and raw
//! units for size histograms. HLL sketches expose their cardinality
//! estimate as a gauge.

use crate::{FamilySnap, MetricKind, Point, Snapshot, HIST_BUCKETS};

use dp_trace::json_string;

/// Escapes a HELP text (backslash and newline, per the text format spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (backslash, double quote, newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",…}` for a label set, with an extra trailing pair when
/// `extra` is given (used for `le`). Empty label sets with no extra render
/// as the empty string.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// The inclusive upper bound of log2 bucket `i`, in raw units.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Formats a raw bound for the `le` label: seconds for time histograms,
/// the raw integer for size histograms.
fn le_value(raw: u64, time: bool) -> String {
    if time {
        format!("{}", raw as f64 / 1e9)
    } else {
        format!("{raw}")
    }
}

fn render_family(out: &mut String, name: &str, fam: &FamilySnap) {
    let (prom_type, unit_time) = match fam.kind {
        MetricKind::Counter => ("counter", false),
        MetricKind::Gauge => ("gauge", false),
        MetricKind::TimeHistogram => ("histogram", true),
        MetricKind::SizeHistogram => ("histogram", false),
        MetricKind::Hll => ("gauge", false),
    };
    out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
    out.push_str(&format!("# TYPE {name} {prom_type}\n"));
    for (labels, point) in &fam.series {
        match point {
            Point::Counter(v) => {
                out.push_str(&format!("{name}{} {v}\n", label_block(labels, None)));
            }
            Point::Gauge(v) => {
                out.push_str(&format!("{name}{} {v}\n", label_block(labels, None)));
            }
            Point::Hll(h) => {
                // The estimate, rounded: a cardinality gauge.
                out.push_str(&format!(
                    "{name}{} {}\n",
                    label_block(labels, None),
                    h.estimate().round()
                ));
            }
            Point::Histogram(h) => {
                let mut cum = 0u64;
                for (i, b) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
                    cum += b;
                    // Skip interior empty buckets to keep scrapes small,
                    // but always emit a bucket that advances the
                    // cumulative count (and the first/last for shape).
                    if *b == 0 && i != 0 && i != HIST_BUCKETS - 1 {
                        continue;
                    }
                    let le = le_value(bucket_upper(i), unit_time);
                    out.push_str(&format!(
                        "{name}_bucket{} {cum}\n",
                        label_block(labels, Some(("le", &le))),
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    label_block(labels, Some(("le", "+Inf"))),
                    h.count
                ));
                let sum = if unit_time {
                    format!("{}", h.sum_secs())
                } else {
                    format!("{}", h.sum)
                };
                out.push_str(&format!("{name}_sum{} {sum}\n", label_block(labels, None)));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    label_block(labels, None),
                    h.count
                ));
            }
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format 0.0.4.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, fam) in &snap.families {
        render_family(&mut out, name, fam);
    }
    out
}

/// Renders the JSON form of a snapshot (hand-rolled; see
/// [`Snapshot::to_json`]).
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"families\":[");
    let mut first_fam = true;
    for (name, fam) in &snap.families {
        if !first_fam {
            out.push(',');
        }
        first_fam = false;
        out.push_str(&format!(
            "{{\"name\":{},\"kind\":{},\"help\":{},\"series\":[",
            json_string(name),
            json_string(fam.kind.tag()),
            json_string(&fam.help)
        ));
        let mut first_series = true;
        for (labels, point) in &fam.series {
            if !first_series {
                out.push(',');
            }
            first_series = false;
            out.push_str("{\"labels\":{");
            let mut first_label = true;
            for (k, v) in labels {
                if !first_label {
                    out.push(',');
                }
                first_label = false;
                out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
            }
            out.push_str("},");
            match point {
                Point::Counter(v) => out.push_str(&format!("\"value\":{v}")),
                Point::Gauge(v) => out.push_str(&format!("\"value\":{v}")),
                Point::Hll(h) => {
                    let occupied = h.registers.iter().filter(|&&r| r != 0).count();
                    out.push_str(&format!(
                        "\"estimate\":{},\"occupied_registers\":{occupied}",
                        h.estimate().round()
                    ));
                }
                Point::Histogram(h) => {
                    out.push_str(&format!("\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum));
                    let mut first_bucket = true;
                    for (i, b) in h.buckets.iter().enumerate() {
                        if *b == 0 {
                            continue;
                        }
                        if !first_bucket {
                            out.push(',');
                        }
                        first_bucket = false;
                        out.push_str(&format!("[{i},{b}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Checks that `text` is well-formed Prometheus text exposition: every
/// line is a comment (`# HELP` / `# TYPE` with a known type) or a sample
/// (`name{labels} value`), names are legal, label blocks are balanced
/// with quoted escaped values, every value parses as a float, and every
/// sample belongs to a family with a preceding `# TYPE` declaration.
///
/// This is what the scrape smoke test and the scrape-under-load test run
/// on every body they fetch — a torn or interleaved exposition fails
/// here.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: bad TYPE metric name `{name}`"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: unknown TYPE `{kind}`"));
                }
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: bad HELP metric name `{name}`"));
                }
                continue;
            }
            continue; // other comments are legal
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {n}: no value separator"))?;
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name `{name}`"));
        }
        let rest = &line[name_end..];
        let value_part = if let Some(after_brace) = rest.strip_prefix('{') {
            let close = find_label_block_end(after_brace)
                .ok_or_else(|| format!("line {n}: unterminated label block"))?;
            let labels = &after_brace[..close];
            validate_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
            after_brace[close + 1..].trim_start()
        } else {
            rest.trim_start()
        };
        let value = value_part.split(' ').next().unwrap_or("");
        let float_ok = value.parse::<f64>().is_ok()
            || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !float_ok {
            return Err(format!("line {n}: unparseable value `{value}`"));
        }
        // Family check: histogram children map back to their base family.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {n}: sample `{name}` has no TYPE declaration"));
        }
    }
    Ok(())
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Index of the closing `}` of a label block (input starts just past the
/// opening `{`), skipping quoted values with backslash escapes.
fn find_label_block_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1, // skip escaped char
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn validate_labels(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Ok(());
    }
    let mut rest = labels;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without `=` in `{rest}`"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name `{key}`"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value after `{key}`"));
        }
        // Find closing quote, honoring escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut closed = None;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 1,
                b'"' => {
                    closed = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let close = closed.ok_or_else(|| format!("unterminated value for `{key}`"))?;
        rest = &after[close + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| format!("junk after value for `{key}`"))?;
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    use super::*;

    fn sample_snapshot() -> Snapshot {
        let m = Metrics::enabled();
        m.counter_with("dp_req_total", "requests so far", &[("kind", "a")])
            .add(7);
        m.gauge("dp_depth", "queue \"depth\"\nnow").set(-3);
        let h = m.time_histogram("dp_run_seconds", "run time");
        h.observe(1); // bucket 1
        h.observe(1_000_000_000); // ~2^30
        let s = m.hll("dp_distinct", "distinct things");
        for v in 0..200u64 {
            s.observe_u64(v);
        }
        m.snapshot()
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = render_prometheus(&sample_snapshot());
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE dp_req_total counter"));
        assert!(text.contains("dp_req_total{kind=\"a\"} 7"));
        assert!(text.contains("# TYPE dp_depth gauge"));
        assert!(text.contains("dp_depth -3"));
        assert!(text.contains("# TYPE dp_run_seconds histogram"));
        assert!(text.contains("dp_run_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dp_run_seconds_count 2"));
        assert!(text.contains("# TYPE dp_distinct gauge"));
        // Escapes: quote in help must not break parsing; newline escaped.
        assert!(text.contains("queue \"depth\"\\nnow"));
    }

    #[test]
    fn json_snapshot_has_expected_shape() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"name\":\"dp_req_total\""));
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"labels\":{\"kind\":\"a\"},\"value\":7"));
        assert!(json.contains("\"kind\":\"hll\"") || json.contains("\"estimate\":"));
        assert!(json.contains("\"count\":2,\"sum\":1000000001"));
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        assert!(validate_exposition("dp_x 1").is_err(), "sample without TYPE");
        assert!(
            validate_exposition("# TYPE dp_x counter\ndp_x one").is_err(),
            "non-float value"
        );
        assert!(
            validate_exposition("# TYPE dp_x counter\ndp_x{a=b} 1").is_err(),
            "unquoted label value"
        );
        assert!(
            validate_exposition("# TYPE dp_x counter\ndp_x{a=\"b} 1").is_err(),
            "unterminated label value"
        );
        assert!(validate_exposition("# TYPE dp_x counter\ndp_x{a=\"b\"} 1").is_ok());
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot::default();
        assert_eq!(render_prometheus(&snap), "");
        assert_eq!(snap.to_json(), "{\"families\":[]}");
        validate_exposition("").unwrap();
    }
}
