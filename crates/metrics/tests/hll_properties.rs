//! Property tests for the HyperLogLog sketch: accuracy bounds, merge
//! laws, and pinned vectors.
//!
//! The theoretical standard error of a 1024-register HLL is
//! `1.04 / sqrt(1024)` ≈ 3.25%; below ~2.5·m the estimator switches to
//! linear counting, which is far tighter. The accuracy tests assert a
//! conservative multiple of those bounds per seeded draw, plus a tighter
//! bound on the mean absolute error across seeds — a sketch that drifted
//! (bad alpha, wrong rho, biased hash use) fails these long before a
//! human would notice a wrong gauge.

use dp_metrics::hll::{self, HllCell};
use dp_metrics::{HLL_PRECISION, HLL_REGISTERS};
use dp_types::DetRng;

/// Sketches `n` distinct items drawn from a seeded stream. Items are
/// `u64`s spread by SplitMix64, so collisions among draws are
/// negligible (~n²/2⁶⁴) and `n` is the true cardinality.
fn sketch_of(seed: u64, n: u64) -> HllCell {
    let mut rng = DetRng::seed_from_u64(seed);
    let cell = HllCell::new();
    for _ in 0..n {
        cell.observe_u64(rng.next_u64());
    }
    cell
}

fn rel_error(estimate: f64, truth: u64) -> f64 {
    (estimate - truth as f64).abs() / truth as f64
}

/// Relative-error bound check at one cardinality across several seeds.
fn assert_accuracy(n: u64, seeds: &[u64], per_seed_bound: f64, mean_bound: f64) {
    let mut total = 0.0;
    for &seed in seeds {
        let err = rel_error(sketch_of(seed, n).estimate(), n);
        assert!(
            err <= per_seed_bound,
            "seed {seed}: estimate off by {:.2}% at n={n} (bound {:.2}%)",
            err * 100.0,
            per_seed_bound * 100.0
        );
        total += err;
    }
    let mean = total / seeds.len() as f64;
    assert!(
        mean <= mean_bound,
        "mean error {:.2}% at n={n} exceeds {:.2}%",
        mean * 100.0,
        mean_bound * 100.0
    );
}

#[test]
fn accuracy_at_1e2() {
    // n = 100 « 2.5·m = 2560: the linear-counting regime, which is
    // nearly exact — only a handful of register collisions occur.
    assert_accuracy(100, &[1, 2, 3, 4, 5, 6, 7, 8], 0.05, 0.03);
}

#[test]
fn accuracy_at_1e4() {
    // Past the linear-counting handoff: the raw HLL estimator with its
    // ~3.25% standard error. 10% per seed is three standard errors.
    assert_accuracy(10_000, &[1, 2, 3, 4, 5, 6, 7, 8], 0.10, 0.04);
}

#[test]
fn accuracy_at_1e6() {
    // Deep in the asymptotic regime; same error model.
    assert_accuracy(1_000_000, &[1, 2, 3, 4], 0.10, 0.05);
}

#[test]
fn merge_is_associative() {
    let a = sketch_of(11, 5_000).registers();
    let b = sketch_of(22, 5_000).registers();
    let c = sketch_of(33, 5_000).registers();
    let ab_c = hll::merged(&hll::merged(&a, &b), &c);
    let a_bc = hll::merged(&a, &hll::merged(&b, &c));
    assert_eq!(ab_c, a_bc);
    // Commutativity and idempotence ride along for free with max-merge.
    assert_eq!(hll::merged(&a, &b), hll::merged(&b, &a));
    assert_eq!(hll::merged(&a, &a), a);
}

#[test]
fn merge_equals_union() {
    // sketch(A) ∪ sketch(B) must equal sketch(A ∪ B) register-for-
    // register: both sides see the same per-item (index, rho) pairs and
    // max over them.
    let mut rng = DetRng::seed_from_u64(77);
    let items_a: Vec<u64> = (0..4_000).map(|_| rng.next_u64()).collect();
    let items_b: Vec<u64> = (0..4_000).map(|_| rng.next_u64()).collect();

    let sa = HllCell::new();
    for &v in &items_a {
        sa.observe_u64(v);
    }
    let sb = HllCell::new();
    // Half of B's stream overlaps A, so the union is smaller than the sum.
    for &v in items_b.iter().chain(items_a.iter().take(2_000)) {
        sb.observe_u64(v);
    }

    let union = HllCell::new();
    for &v in items_a.iter().chain(items_b.iter()) {
        union.observe_u64(v);
    }

    let merged = hll::merged(&sa.registers(), &sb.registers());
    assert_eq!(merged, union.registers());

    // And the merged estimate tracks the true union cardinality (8000),
    // not the 10000 observations fed in total.
    let est = hll::estimate(&merged);
    assert!(
        rel_error(est, 8_000) < 0.10,
        "union estimate {est} far from 8000"
    );
}

/// Pinned vectors: the sketch is part of the observable surface (it is
/// exposed on `/metrics` and merged across registries), so its exact
/// behavior for a known input stream is pinned — a change to the hash,
/// the precision, or the rho computation must show up here, not as a
/// silent accuracy drift.
#[test]
fn pinned_vectors() {
    assert_eq!(HLL_PRECISION, 10);
    assert_eq!(HLL_REGISTERS, 1024);

    // Single known item: exactly one register set, at a pinned position.
    let one = HllCell::new();
    one.observe_u64(0);
    let regs = one.registers();
    let set: Vec<(usize, u8)> = regs
        .iter()
        .enumerate()
        .filter(|(_, &r)| r != 0)
        .map(|(i, &r)| (i, r))
        .collect();
    assert_eq!(set, vec![(675, 4)], "fnv64(0u64 le bytes) placement moved");

    // A seeded thousand-item stream: pin the register checksum and the
    // rounded estimate.
    let s = sketch_of(42, 1_000);
    let regs = s.registers();
    let checksum = dp_types::codec::fnv64(&regs);
    assert_eq!(checksum, 0xc3dc_e6d5_431b_dcfd, "register contents moved");
    assert_eq!(s.estimate().round() as u64, 955, "estimate moved");
}
