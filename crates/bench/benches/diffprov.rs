//! Benchmarks of whole DiffProv queries per scenario — the turnaround
//! times behind Figure 7.
//!
//! Run with `cargo bench -p dp-bench --features bench`.

use dp_bench::harness::{bench, black_box};

fn main() {
    for scenario in dp_sdn::all_sdn_scenarios() {
        bench(&format!("diffprov/{}", scenario.name), 10, || {
            let report = scenario.diagnose().unwrap();
            assert!(report.succeeded());
            black_box(report.delta.len())
        });
    }
    for scenario in dp_mapreduce::all_mr_scenarios() {
        bench(&format!("diffprov/{}", scenario.name), 10, || {
            let report = scenario.diagnose().unwrap();
            assert!(report.succeeded());
            black_box(report.delta.len())
        });
    }

    // A single classical provenance query on the bad tree (the Y!
    // baseline in Figure 7).
    let scenario = dp_sdn::sdn1();
    bench("ybang/SDN1_bad_tree", 10, || {
        let r = scenario.bad_exec.replay().unwrap();
        let tree = r
            .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
            .unwrap();
        black_box(tree.len())
    });
}
