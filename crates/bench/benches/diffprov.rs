//! Criterion benchmarks of whole DiffProv queries per scenario — the
//! turnaround times behind Figure 7.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffprov");
    group.sample_size(10);
    for scenario in dp_sdn::all_sdn_scenarios() {
        group.bench_function(scenario.name, |b| {
            b.iter(|| {
                let report = scenario.diagnose().unwrap();
                assert!(report.succeeded());
                criterion::black_box(report.delta.len())
            })
        });
    }
    for scenario in dp_mapreduce::all_mr_scenarios() {
        group.bench_function(scenario.name, |b| {
            b.iter(|| {
                let report = scenario.diagnose().unwrap();
                assert!(report.succeeded());
                criterion::black_box(report.delta.len())
            })
        });
    }
    group.finish();
}

fn bench_ybang_baseline(c: &mut Criterion) {
    // A single classical provenance query on the bad tree (the Y!
    // baseline in Figure 7).
    let mut group = c.benchmark_group("ybang");
    group.sample_size(10);
    let scenario = dp_sdn::sdn1();
    group.bench_function("SDN1_bad_tree", |b| {
        b.iter(|| {
            let r = scenario.bad_exec.replay().unwrap();
            let tree = r
                .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
                .unwrap();
            criterion::black_box(tree.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios, bench_ybang_baseline);
criterion_main!(benches);
