//! Benchmarks of the provenance layer: tree extraction, the plain-diff
//! strawman, and checkpointed vs. full replay.
//!
//! Run with `cargo bench -p dp-bench --features bench`.

use dp_bench::harness::{bench, black_box};
use dp_provenance::plain_tree_diff;

fn main() {
    let scenario = dp_sdn::sdn1();
    let replayed = scenario.good_exec.replay().unwrap();
    let good = replayed
        .query_at(&scenario.good_event.tref, scenario.good_event.at)
        .unwrap();
    let bad = replayed
        .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
        .unwrap();

    bench("provenance/extract_tree", 10, || {
        let t = replayed
            .query_at(&scenario.good_event.tref, scenario.good_event.at)
            .unwrap();
        black_box(t.len())
    });
    bench("provenance/plain_tree_diff", 10, || {
        black_box(plain_tree_diff(&good, &bad).len())
    });

    let exec = &scenario.good_exec;
    let store = exec.build_checkpoints(16).unwrap();
    let horizon = exec.log.horizon();
    bench("replay/full", 20, || black_box(exec.replay().unwrap().now()));
    bench("replay/from_checkpoint", 20, || {
        black_box(exec.replay_from_checkpoint(&store, horizon).unwrap().now())
    });
}
