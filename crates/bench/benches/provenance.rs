//! Criterion benchmarks of the provenance layer: tree extraction, the
//! plain-diff strawman, and checkpointed vs. full replay.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_provenance::plain_tree_diff;

fn bench_extraction_and_diff(c: &mut Criterion) {
    let scenario = dp_sdn::sdn1();
    let replayed = scenario.good_exec.replay().unwrap();
    let good = replayed
        .query_at(&scenario.good_event.tref, scenario.good_event.at)
        .unwrap();
    let bad = replayed
        .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
        .unwrap();

    c.bench_function("provenance/extract_tree", |b| {
        b.iter(|| {
            let t = replayed
                .query_at(&scenario.good_event.tref, scenario.good_event.at)
                .unwrap();
            criterion::black_box(t.len())
        })
    });
    c.bench_function("provenance/plain_tree_diff", |b| {
        b.iter(|| criterion::black_box(plain_tree_diff(&good, &bad).len()))
    });
}

fn bench_checkpointed_replay(c: &mut Criterion) {
    let scenario = dp_sdn::sdn1();
    let exec = &scenario.good_exec;
    let store = exec.build_checkpoints(16).unwrap();
    let horizon = exec.log.horizon();

    let mut group = c.benchmark_group("replay");
    group.sample_size(20);
    group.bench_function("full", |b| {
        b.iter(|| criterion::black_box(exec.replay().unwrap().now()))
    });
    group.bench_function("from_checkpoint", |b| {
        b.iter(|| {
            criterion::black_box(
                exec.replay_from_checkpoint(&store, horizon)
                    .unwrap()
                    .now(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction_and_diff, bench_checkpointed_replay);
criterion_main!(benches);
