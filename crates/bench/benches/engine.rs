//! Criterion micro-benchmarks of the NDlog engine: packet-processing
//! throughput with and without provenance capture (the per-packet cost
//! behind the Section 6.4 latency numbers).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_replay::Execution;
use dp_sdn::{cfg_entry, generate, sdn_program, Topology, TraceConfig};
use dp_types::prefix::cidr;
use dp_types::NodeId;

fn pipeline_exec(packets: usize) -> Execution {
    let mut topo = Topology::new("ctl");
    topo.switches(&["S1", "S2"]);
    topo.link("S1", "S2");
    let p_host = topo.host("S2", "sink");
    let program = sdn_program("ctl").unwrap();
    let mut exec = Execution::new(Arc::clone(&program));
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = cidr("0.0.0.0/0");
    exec.log.insert(
        10,
        ctl.clone(),
        cfg_entry(1, "S1", 1, any, any, topo.port_towards("S1", "S2")),
    );
    exec.log.insert(10, ctl, cfg_entry(2, "S2", 1, any, any, p_host));
    let trace = generate(&TraceConfig {
        packets,
        ..Default::default()
    });
    let mut t = 100u64;
    for p in trace.packets {
        exec.log.insert(t, "S1", p);
        t += 1;
    }
    exec
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &packets in &[500usize, 2_000] {
        let exec = pipeline_exec(packets);
        group.bench_with_input(
            BenchmarkId::new("replay_no_capture", packets),
            &exec,
            |b, exec| b.iter(|| exec.replay_null().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("replay_with_capture", packets),
            &exec,
            |b, exec| b.iter(|| exec.replay().unwrap()),
        );
    }
    group.finish();
}

fn bench_single_packet(c: &mut Criterion) {
    // Marginal cost of one more packet, both modes.
    let small = pipeline_exec(100);
    let large = pipeline_exec(101);
    c.bench_function("engine/marginal_packet", |b| {
        b.iter(|| {
            let a = small.replay_null().unwrap().stats().events;
            let z = large.replay_null().unwrap().stats().events;
            criterion::black_box(z - a)
        })
    });
}

criterion_group!(benches, bench_engine, bench_single_packet);
criterion_main!(benches);
