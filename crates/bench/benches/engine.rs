//! Micro-benchmarks of the NDlog engine: packet-processing throughput
//! with and without provenance capture (the per-packet cost behind the
//! Section 6.4 latency numbers).
//!
//! Run with `cargo bench -p dp-bench --features bench`.

use std::sync::Arc;

use dp_bench::harness::{bench, black_box};
use dp_replay::Execution;
use dp_sdn::{cfg_entry, generate, sdn_program, Topology, TraceConfig};
use dp_types::prefix::cidr;
use dp_types::NodeId;

fn pipeline_exec(packets: usize) -> Execution {
    let mut topo = Topology::new("ctl");
    topo.switches(&["S1", "S2"]);
    topo.link("S1", "S2");
    let p_host = topo.host("S2", "sink");
    let program = sdn_program("ctl").unwrap();
    let mut exec = Execution::new(Arc::clone(&program));
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = cidr("0.0.0.0/0");
    exec.log.insert(
        10,
        ctl.clone(),
        cfg_entry(1, "S1", 1, any, any, topo.port_towards("S1", "S2")),
    );
    exec.log.insert(10, ctl, cfg_entry(2, "S2", 1, any, any, p_host));
    let trace = generate(&TraceConfig {
        packets,
        ..Default::default()
    });
    for (i, p) in trace.packets.into_iter().enumerate() {
        exec.log.insert(100 + i as u64, "S1", p);
    }
    exec
}

fn main() {
    for &packets in &[500usize, 2_000] {
        let exec = pipeline_exec(packets);
        bench(&format!("engine/replay_no_capture/{packets}"), 10, || {
            exec.replay_null().unwrap()
        });
        bench(&format!("engine/replay_with_capture/{packets}"), 10, || {
            exec.replay().unwrap()
        });
    }

    // Marginal cost of one more packet, both modes.
    let small = pipeline_exec(100);
    let large = pipeline_exec(101);
    bench("engine/marginal_packet", 10, || {
        let a = small.replay_null().unwrap().stats().events;
        let z = large.replay_null().unwrap().stats().events;
        black_box(z - a)
    });
}
