//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p dp-bench --release --bin repro -- all
//! cargo run -p dp-bench --release --bin repro -- table1
//! ```

use dp_bench::{
    ablation, complex, engine_bench, latency, metrics_cmd, query, storage, table1, trace_cmd,
    unsuitable,
};

/// Knobs settable anywhere on the command line: `--entries N` scales
/// `enginebench`'s campus workload, `--shards N` picks the sharded point
/// on its curve (the 1-shard serial reference always runs too, for the
/// stream-identity check), and `--seeds N` sizes the `sim` sweep.
#[derive(Clone, Copy)]
struct BenchOpts {
    entries: usize,
    shards: usize,
    seeds: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            entries: 1_000_000,
            shards: 4,
            seeds: 200,
        }
    }
}

fn parse_flag(flag: &str, value: Option<&String>) -> usize {
    match value.and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("usage: repro -- [...] {flag} <positive integer>");
            std::process::exit(2);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = BenchOpts::default();
    let mut addr = String::from("127.0.0.1:9100");
    let mut args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--entries" => {
                opts.entries = parse_flag("--entries", raw.get(i + 1));
                i += 2;
            }
            "--addr" => {
                let Some(a) = raw.get(i + 1) else {
                    eprintln!("usage: repro -- [...] --addr <host:port>");
                    std::process::exit(2);
                };
                addr = a.clone();
                i += 2;
            }
            "--shards" => {
                opts.shards = parse_flag("--shards", raw.get(i + 1));
                i += 2;
            }
            "--seeds" => {
                opts.seeds = parse_flag("--seeds", raw.get(i + 1)) as u64;
                i += 2;
            }
            _ => {
                args.push(raw[i].clone());
                i += 1;
            }
        }
    }
    if args.is_empty() {
        dispatch("all", opts);
        return;
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            cmd @ ("trace" | "stats" | "metrics" | "serve-metrics") => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!(
                        "usage: repro -- {cmd} <scenario>; scenarios: {}",
                        trace_cmd::SCENARIO_NAMES.join(" ")
                    );
                    std::process::exit(2);
                };
                let Some(scenario) = trace_cmd::find_scenario(name) else {
                    eprintln!(
                        "unknown scenario {name:?}; available: {}",
                        trace_cmd::SCENARIO_NAMES.join(" ")
                    );
                    std::process::exit(2);
                };
                match cmd {
                    "trace" => run_trace(&scenario),
                    "stats" => run_stats(&scenario),
                    "metrics" => run_metrics(&scenario),
                    _ => run_serve_metrics(&scenario, &addr),
                }
                i += 2;
            }
            "metrics-smoke" => {
                run_metrics_smoke();
                i += 1;
            }
            "sim" => {
                run_sim(opts);
                i += 1;
            }
            what => {
                dispatch(what, opts);
                i += 1;
            }
        }
    }
}

fn run_sim(opts: BenchOpts) {
    banner(&format!(
        "Simulation: fault-injection sweep over {} seeded scenarios",
        opts.seeds
    ));
    let corpus = std::path::Path::new("tests").join("corpus");
    let mut checked = 0u64;
    let summary = dp_sim::run_seeds(0, opts.seeds, Some(&corpus), |seed, report| {
        checked += 1;
        if !report.passed() {
            println!(
                "  seed {seed}: {} invariant violation(s), shrinking...",
                report.violations.len()
            );
        } else if checked.is_multiple_of(50) {
            println!("  {checked} seeds checked...");
        }
    });
    println!(
        "  {} seeds: {} divergent, {} diagnosed, {} aligned by DiffProv",
        summary.seeds, summary.divergent, summary.diagnosed, summary.diagnosis_succeeded
    );
    let kinds: Vec<String> = summary
        .kind_counts
        .iter()
        .map(|(k, n)| format!("{k} x{n}"))
        .collect();
    println!("  injections applied: {}", kinds.join(", "));
    for path in &summary.corpus_written {
        println!("  wrote shrunk repro {}", path.display());
    }
    if summary.passed() {
        println!("  all invariants held");
    } else {
        for (seed, v) in &summary.violations {
            eprintln!("  seed {seed}: {v}");
        }
        eprintln!(
            "  {} violation(s) across {} seeds",
            summary.violations.len(),
            summary.seeds
        );
        std::process::exit(1);
    }
}

fn run_trace(scenario: &diffprov_core::Scenario) {
    banner(&format!(
        "Trace: {} — {}",
        scenario.name, scenario.description
    ));
    let run = trace_cmd::trace_scenario(scenario).expect("traced diagnosis runs");
    print!("{}", trace_cmd::summary(&run));
    let jsonl = format!("TRACE_{}.jsonl", scenario.name);
    let chrome = format!("TRACE_{}.trace.json", scenario.name);
    std::fs::write(&jsonl, run.trace.to_jsonl()).expect("trace file is writable");
    std::fs::write(&chrome, run.trace.to_chrome()).expect("trace file is writable");
    println!(
        "  wrote {jsonl} ({} events) and {chrome} (load in Perfetto or chrome://tracing)",
        run.trace.events.len()
    );
}

fn run_stats(scenario: &diffprov_core::Scenario) {
    println!(
        "{}",
        trace_cmd::stats_json(scenario).expect("stats replay runs")
    );
}

fn run_metrics(scenario: &diffprov_core::Scenario) {
    match metrics_cmd::one_shot(scenario) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("metrics {} failed: {e}", scenario.name);
            std::process::exit(1);
        }
    }
}

fn run_serve_metrics(scenario: &diffprov_core::Scenario, addr: &str) {
    banner(&format!(
        "Serve: live /metrics endpoint while replaying {}",
        scenario.name
    ));
    if let Err(e) = metrics_cmd::serve(scenario, addr) {
        eprintln!("serve-metrics failed: {e}");
        std::process::exit(1);
    }
}

fn run_metrics_smoke() {
    banner("Smoke: scrape a live /metrics endpoint under replay load");
    let scenario = trace_cmd::find_scenario("SDN1").expect("SDN1 exists");
    if let Err(e) = metrics_cmd::smoke(&scenario) {
        eprintln!("metrics-smoke failed: {e}");
        std::process::exit(1);
    }
}

fn dispatch(what: &str, opts: BenchOpts) {
    let run_all = what == "all";
    let mut ran = false;

    if run_all || what == "table1" {
        run_table1();
        ran = true;
    }
    if run_all || what == "fig5" {
        run_fig5();
        ran = true;
    }
    if run_all || what == "fig6" {
        run_fig6();
        ran = true;
    }
    if run_all || what == "fig7" || what == "fig8" {
        run_fig7_fig8(run_all || what == "fig7", run_all || what == "fig8");
        ran = true;
    }
    if run_all || what == "unsuitable" {
        run_unsuitable();
        ran = true;
    }
    if run_all || what == "latency" {
        run_latency();
        ran = true;
    }
    if run_all || what == "mrstorage" {
        run_mrstorage();
        ran = true;
    }
    if run_all || what == "complex" {
        run_complex();
        ran = true;
    }
    if run_all || what == "ablation" {
        run_ablation();
        ran = true;
    }
    if run_all || what == "enginebench" {
        run_enginebench(opts);
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown experiment {what:?}; available: all table1 fig5 fig6 fig7 fig8 \
             unsuitable latency mrstorage complex ablation enginebench \
             sim [--seeds N] [--entries N] [--shards N] \
             trace <scenario> stats <scenario> metrics <scenario> \
             serve-metrics <scenario> [--addr host:port] metrics-smoke"
        );
        std::process::exit(2);
    }
}

fn run_ablation() {
    banner("Ablation 1: butterfly effect vs. divergent path length");
    println!(
        "  {:<6} {:>10} {:>10} {:>12} {:>10}",
        "hops", "good tree", "bad tree", "plain diff", "DiffProv"
    );
    for r in ablation::butterfly(&[1, 2, 4, 8, 12]).expect("butterfly runs") {
        println!(
            "  {:<6} {:>10} {:>10} {:>12} {:>10}",
            r.hops, r.good, r.bad, r.plain_diff, r.diffprov
        );
    }
    println!("  (the strawman grows with the path; DiffProv stays at one tuple)");

    banner("Ablation 2: diagnosis is insensitive to table size and traffic");
    println!(
        "  {:>9} {:>12} {:>7} {:>12} {:>12}",
        "entries", "background", "Δ size", "names cause", "turnaround"
    );
    for r in ablation::noise(&[(0, 0), (2, 60), (8, 300)]).expect("noise runs") {
        println!(
            "  {:>9} {:>12} {:>7} {:>12} {:>12.2?}",
            r.entries, r.background, r.delta, r.names_root_cause, r.elapsed
        );
    }

    banner("Ablation 3: checkpoint interval vs. query-time replay");
    println!("  {:>10} {:>12} {:>14}", "interval", "checkpoints", "replay time");
    for r in ablation::checkpoints(10_000, &[4096, 1024, 256]).expect("checkpoints run") {
        println!(
            "  {:>10} {:>12} {:>14.2?}",
            r.interval.map_or("none".to_string(), |i| i.to_string()),
            r.checkpoints,
            r.replay_time
        );
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn run_table1() {
    banner("Table 1: vertexes returned by five diagnostic techniques");
    let rows = table1::table1().expect("table 1 runs");
    print!("{}", table1::Table1Display(&rows));
    println!(
        "(DiffProv row: changes per alignment round; SDN4 runs two rounds. \
         All alignments verified: {})",
        rows.iter().all(|r| r.verified)
    );
}

fn run_fig5() {
    banner("Figure 5: logging rate vs. traffic rate (500-byte packets)");
    let cost = storage::packet_log_cost(20_000, 500).expect("trace runs");
    println!(
        "measured {:.1} B/packet of log ({} packets ingested in {:.2}s)",
        cost.bytes_per_packet, cost.packets, cost.ingest_seconds
    );
    for p in storage::fig5(&cost) {
        println!("  {p}");
    }
}

fn run_fig6() {
    banner("Figure 6: logging rate vs. packet size (1 Gbps)");
    let costs: Vec<(i64, storage::PacketLogCost)> = [500i64, 750, 1000, 1250, 1500]
        .iter()
        .map(|&len| (len, storage::packet_log_cost(5_000, len).expect("trace runs")))
        .collect();
    for p in storage::fig6(&costs) {
        println!("  {p}");
    }
}

fn run_fig7_fig8(fig7: bool, fig8: bool) {
    let timings = query::all_timings().expect("timings run");
    if fig7 {
        banner("Figure 7: query turnaround, DiffProv vs. Y!");
        println!(
            "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>7}",
            "query", "Y! (ms)", "DiffProv", "replay", "reasoning", "rounds"
        );
        for t in &timings {
            println!(
                "  {:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.3} {:>7}",
                t.name,
                query::ms(t.ybang),
                query::ms(t.diffprov_total),
                query::ms(t.diffprov_replay),
                query::ms(t.diffprov_reasoning),
                t.rounds
            );
        }
        println!("  (all times dominated by replay; reasoning is negligible)");
    }
    if fig8 {
        banner("Figure 8: decomposition of DiffProv's reasoning time (µs)");
        println!(
            "  {:<8} {:>12} {:>16} {:>14}",
            "query", "find seeds", "detect diverg.", "make appear"
        );
        for t in &timings {
            println!(
                "  {:<8} {:>12.1} {:>16.1} {:>14.1}",
                t.name,
                query::us(t.find_seeds),
                query::us(t.detect_divergence),
                query::us(t.make_appear)
            );
        }
    }
}

fn run_unsuitable() {
    banner("Section 6.3: unsuitable reference events");
    let results = unsuitable::all_unsuitable().expect("queries run");
    for r in &results {
        println!("  {:<60} -> {:?}", r.label, kind(&r.category));
        println!("      {}", r.diagnostic);
    }
    let mism = results
        .iter()
        .filter(|r| r.category == unsuitable::Category::SeedTypeMismatch)
        .count();
    let imm = results
        .iter()
        .filter(|r| r.category == unsuitable::Category::ImmutableChange)
        .count();
    println!(
        "  summary: {} queries, {} seed-type mismatches, {} immutable-tuple failures",
        results.len(),
        mism,
        imm
    );
}

fn kind(c: &unsuitable::Category) -> &'static str {
    match c {
        unsuitable::Category::SeedTypeMismatch => "seed-type mismatch",
        unsuitable::Category::ImmutableChange => "immutable tuple",
        unsuitable::Category::Other(_) => "other failure",
        unsuitable::Category::Succeeded => "aligned trivially",
    }
}

fn run_latency() {
    banner("Section 6.4: logging latency overhead");
    let sdn = latency::sdn_overhead(20_000, 3).expect("SDN workload runs");
    println!(
        "  {:<28} baseline {:.3}s, with capture {:.3}s -> {:+.1}%",
        sdn.workload,
        sdn.baseline_secs,
        sdn.with_capture_secs,
        sdn.relative() * 100.0
    );
    let mr = latency::mr_overhead(400, 3).expect("MR workload runs");
    println!(
        "  {:<28} baseline {:.3}s, with capture {:.3}s -> {:+.1}%",
        mr.workload,
        mr.baseline_secs,
        mr.with_capture_secs,
        mr.relative() * 100.0
    );
    let cs = latency::checksum_costs(4_000);
    println!(
        "  checksum strategies over {} reads: per-read {:.4}s vs cached {:.6}s ({}x cheaper)",
        cs.reads,
        cs.per_read_secs,
        cs.cached_secs,
        (cs.per_read_secs / cs.cached_secs) as u64
    );
}

fn run_mrstorage() {
    banner("Section 6.5: MapReduce log sizes (metadata only)");
    for (lines, files) in [(200usize, 2usize), (1000, 4), (5000, 8)] {
        let m = storage::mr_storage(lines, files).expect("job builds");
        println!(
            "  corpus {:>10} bytes -> durable log {:>7} bytes ({:.3}%)",
            m.corpus_bytes,
            m.log_bytes,
            m.log_bytes as f64 / m.corpus_bytes as f64 * 100.0
        );
    }
}

fn print_shard_curve(r: &engine_bench::ShardBenchResult) {
    for p in &r.points {
        let loads: Vec<String> = p.shard_loads.iter().map(|l| l.to_string()).collect();
        println!(
            "    {} shard(s): {:.3}s, {:.0} tuples/s, {:.2}x, loads [{}], {} cross-shard msgs, {} sharded batches",
            p.shards,
            p.secs,
            p.events as f64 / p.secs.max(1e-12),
            r.speedup_at(p.shards),
            loads.join(" "),
            p.cross_shard_msgs,
            p.sharded_batches
        );
    }
    println!("    streams identical: {}", r.streams_identical);
}

fn run_enginebench(opts: BenchOpts) {
    banner("Engine: joins and firing disciplines (campus, 100k+ entries)");
    // Enough background traffic that packet forwarding — the workload the
    // prefix trie accelerates — carries real weight next to the one-off
    // bulk configuration load.
    let b = engine_bench::engine_bench(100_000, 400).expect("benchmark runs");
    println!(
        "  {} entries, {} background packets, {} events",
        b.entries, b.background_packets, b.events
    );
    println!(
        "  batched {:.3}s vs streamed {:.3}s vs naive {:.3}s -> {:.2}x batch, {:.1}x total, {:.0} tuples/s",
        b.indexed_secs,
        b.unbatched_secs,
        b.naive_secs,
        b.batch_speedup(),
        b.speedup(),
        b.tuples_per_sec()
    );
    println!(
        "  worker pool: serial {:.3}s vs {} threads {:.3}s -> {:.2}x ({} batches on the pool)",
        b.indexed_secs,
        b.threads,
        b.parallel_secs,
        b.parallel_speedup(),
        b.parallel_batches
    );
    println!(
        "  prefix trie: {:.3}s with vs {:.3}s without -> {:.2}x batched, {:.2}x streamed ({} trie probes vs {} forced scans)",
        b.indexed_secs,
        b.scan_secs,
        b.trie_speedup(),
        b.unbatched_trie_speedup(),
        b.trie_probes,
        b.trie_scans
    );
    println!(
        "  probes {} / scans {} (hit rate {:.1}%), {} deltas in {} batches, peak tuples {} (interned {}), streams identical: {}",
        b.join_probes,
        b.join_scans,
        b.index_hit_rate * 100.0,
        b.batched_deltas,
        b.batches,
        b.peak_tuples,
        b.peak_interned,
        b.streams_identical
    );
    banner("Engine: bulk configuration load (the batched firing path)");
    let l = engine_bench::load_bench(100_000).expect("load bench runs");
    println!(
        "  {} entries, no traffic: batched {:.3}s vs streamed {:.3}s -> {:.2}x",
        l.entries,
        l.batched_secs,
        l.streamed_secs,
        l.batch_speedup()
    );
    println!(
        "  join steps run: batched {} vs streamed {}, streams identical: {}",
        l.batched_steps, l.streamed_steps, l.streams_identical
    );
    banner("Engine: FIB-lookup equality join (the indexed access path)");
    let f = engine_bench::fib_bench(100_000, 200).expect("fib bench runs");
    println!(
        "  {} cfgEntry rows, {} lookups: indexed {:.3}s vs naive {:.3}s -> {:.0}x",
        f.entries,
        f.queries,
        f.indexed_secs,
        f.naive_secs,
        f.speedup()
    );
    println!(
        "  join candidates examined: indexed {} vs naive {}, streams identical: {}",
        f.indexed_candidates, f.naive_candidates, f.streams_identical
    );
    banner("Engine: node-sharded evaluation (100k entries, 1/2/4 shards)");
    let shard = engine_bench::shard_bench(100_000, 400, &[1, 2, 4], 3).expect("shard bench runs");
    print_shard_curve(&shard);
    banner("Engine: sustained packet rate, sharded (small tables, heavy traffic)");
    let rate = engine_bench::shard_bench(2_000, 4_000, &[1, 4], 3).expect("rate bench runs");
    print_shard_curve(&rate);
    println!(
        "    {:.0} packets/s serial vs {:.0} packets/s at 4 shards",
        rate.background_packets as f64 / rate.serial_secs().max(1e-12),
        rate.background_packets as f64
            / rate.points.last().map_or(1e-12, |p| p.secs).max(1e-12)
    );
    banner(&format!(
        "Engine: {} entries at {} shard(s) (single pass each)",
        opts.entries, opts.shards
    ));
    let counts: Vec<usize> = if opts.shards == 1 { vec![1] } else { vec![1, opts.shards] };
    let million =
        engine_bench::shard_bench(opts.entries, 200, &counts, 1).expect("million-entry leg runs");
    print_shard_curve(&million);
    banner("Engine: provenance backends (graph vs annotations, 100k entries)");
    let prov = engine_bench::prov_bench(100_000, 400, 200).expect("prov bench runs");
    println!(
        "  live records: graph {} vs annotations {} -> {:.1}x reduction",
        prov.graph_records,
        prov.annot_records,
        prov.reduction()
    );
    println!(
        "  recording: graph {:.3}s vs annotations {:.3}s",
        prov.graph_record_secs, prov.annot_record_secs
    );
    println!(
        "  reconstruction: {} trees, avg {:.3}ms / max {:.3}ms per tree (extraction avg {:.3}ms), trees match: {}",
        prov.trees_sampled,
        prov.reconstruct_avg_ms,
        prov.reconstruct_max_ms,
        prov.extract_avg_ms,
        prov.trees_match
    );
    banner("Engine: durable layered store (spill, kill, recover)");
    let durable =
        engine_bench::durable_bench(100_000, 400, 8_192).expect("durable bench runs");
    println!(
        "  {} base events sealed into {} layer files ({} B) + {} checkpoints ({} B), {:.2} B/event on disk",
        durable.events,
        durable.layer_files,
        durable.layer_bytes,
        durable.checkpoint_files,
        durable.checkpoint_bytes,
        durable.bytes_per_event()
    );
    println!(
        "  spill {:.3}s; recovery (newest checkpoint + {} tail events) {:.3}s vs cold full replay {:.3}s -> {:.1}x, digest match: {}",
        durable.spill_secs,
        durable.tail_events,
        durable.recovery_secs,
        durable.cold_replay_secs,
        durable.recovery_speedup(),
        durable.digest_match
    );
    banner("Engine: metrics subsystem overhead (enabled vs disabled)");
    let overhead =
        engine_bench::metrics_overhead_bench(100_000, 400, 3).expect("overhead bench runs");
    println!(
        "  disabled {:.3}s vs enabled {:.3}s -> {:.2}x ({} families, ~{} distinct flows), streams identical: {}",
        overhead.disabled_secs,
        overhead.enabled_secs,
        overhead.overhead_ratio(),
        overhead.metric_families,
        overhead.distinct_flows,
        overhead.streams_identical
    );
    println!("  checking cross-mode parity on all scenarios...");
    let parity = engine_bench::scenario_parity().expect("parity runs");
    for p in &parity {
        println!(
            "    {:<8} good {:>4} / bad {:>4} vertexes, identical: {}",
            p.name, p.good_vertexes, p.bad_vertexes, p.identical
        );
    }
    let json = engine_bench::to_json(
        &b,
        &l,
        &f,
        &shard,
        &rate,
        Some(&million),
        Some(&prov),
        Some(&durable),
        Some(&overhead),
        &parity,
    );
    std::fs::write("BENCH_engine.json", &json).expect("BENCH_engine.json is writable");
    println!("  wrote BENCH_engine.json");
    assert!(
        b.streams_identical
            && l.streams_identical
            && f.streams_identical
            && shard.streams_identical
            && rate.streams_identical
            && million.streams_identical
            && overhead.streams_identical
            && parity.iter().all(|p| p.identical),
        "engine modes disagree"
    );
    assert!(
        durable.digest_match,
        "durable recovery digest diverged from the crash-free reference"
    );
    assert!(prov.trees_match, "provenance backends disagree on sampled trees");
    assert!(
        prov.reduction() >= 5.0,
        "annotation store only {:.1}x smaller than the graph",
        prov.reduction()
    );
}

fn run_complex() {
    banner("Section 6.7: complex network diagnostics (campus backbone)");
    let r = complex::complex(&dp_sdn::CampusConfig {
        background_packets: 300,
        bulk_entries_per_router: 8,
        ..Default::default()
    })
    .expect("campus experiment runs");
    println!(
        "  {} forwarding/ACL entries, {} extra faults, {} background packets",
        r.entries, r.extra_faults, r.background_packets
    );
    println!(
        "  trees: good {} / bad {} vertexes; plain diff {} (larger than either: {})",
        r.good_tree,
        r.bad_tree,
        r.plain_diff,
        r.plain_diff > r.good_tree.max(r.bad_tree)
    );
    println!(
        "  DiffProv: {} change(s), misconfigured entry named: {}, verified: {}, in {:.2?}",
        r.delta, r.names_root_cause, r.verified, r.elapsed
    );
}
