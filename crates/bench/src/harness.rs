//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds offline, so the micro-benchmark targets use this
//! instead of an external framework: each measurement is a warmup run
//! followed by `samples` timed runs, reported as min / median / mean.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark: timing summary over `samples` runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed run.
    pub min: Duration,
    /// Median run (the headline number — robust to scheduler noise).
    pub median: Duration,
    /// Arithmetic mean over all runs.
    pub mean: Duration,
    /// Number of timed runs.
    pub samples: usize,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:>10.3?}  (min {:>10.3?}, mean {:>10.3?}, n={})",
            self.median, self.min, self.mean, self.samples
        )
    }
}

/// Times `f` over `samples` runs (plus one untimed warmup) and returns the
/// summary. The closure's return value is passed through [`black_box`] so
/// the work cannot be optimized away.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(samples > 0);
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    let mean = times.iter().sum::<Duration>() / samples as u32;
    Measurement {
        min: times[0],
        median: times[samples / 2],
        mean,
        samples,
    }
}

/// Runs a named benchmark and prints one aligned line.
pub fn bench<T>(name: &str, samples: usize, f: impl FnMut() -> T) -> Measurement {
    let m = measure(samples, f);
    println!("{name:<40} {m}");
    m
}
