//! Figures 7 and 8: query turnaround and reasoning-time decomposition.
//!
//! Figure 7 compares the time to answer a DiffProv query against the Y!
//! baseline (a classical provenance query for the bad tree). Both are
//! dominated by replay; DiffProv replays roughly twice as much (once more
//! to update the bad tree after inserting the change), three times when
//! the reference lives in a separate execution (the MapReduce scenarios).
//! Figure 8 decomposes the (tiny) pure-reasoning time into FINDSEED,
//! divergence detection, and MAKEAPPEAR.

use std::time::{Duration, Instant};

use diffprov_core::Scenario;
use dp_types::Result;

/// One scenario's timing results.
#[derive(Clone, Debug)]
pub struct QueryTiming {
    /// Scenario name.
    pub name: String,
    /// Y! baseline: replay the bad execution and extract the bad tree.
    pub ybang: Duration,
    /// DiffProv total turnaround.
    pub diffprov_total: Duration,
    /// Of which: replay (including the UPDATETREE replays).
    pub diffprov_replay: Duration,
    /// Of which: pure reasoning.
    pub diffprov_reasoning: Duration,
    /// Reasoning decomposition (Figure 8).
    pub find_seeds: Duration,
    /// Divergence detection (taints + formula evaluation).
    pub detect_divergence: Duration,
    /// Making missing tuples appear (inversion + repair).
    pub make_appear: Duration,
    /// Number of alignment rounds.
    pub rounds: usize,
}

/// Measures one scenario.
pub fn measure(scenario: &Scenario) -> Result<QueryTiming> {
    // The Figure 7/8 decomposition is defined against the serial replay
    // path; pin one thread so a DP_THREADS run measures the same shape
    // (on a host with fewer cores than the setting, the worker pool adds
    // spawn overhead to the tiny scenarios without adding speed).
    let mut scenario = Scenario {
        name: scenario.name,
        description: scenario.description,
        good_exec: scenario.good_exec.clone(),
        bad_exec: scenario.bad_exec.clone(),
        good_event: scenario.good_event.clone(),
        bad_event: scenario.bad_event.clone(),
        expected_changes: scenario.expected_changes,
        expected_rounds: scenario.expected_rounds,
    };
    scenario.good_exec.threads = 1;
    scenario.bad_exec.threads = 1;
    let scenario = &scenario;
    // Y! baseline.
    let t = Instant::now();
    let rb = scenario.bad_exec.replay()?;
    let _bad_tree = rb
        .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
        .ok_or_else(|| dp_types::Error::Engine("bad event missing".into()))?;
    let ybang = t.elapsed();
    drop(rb);

    // DiffProv.
    let report = scenario.diagnose()?;
    let m = report.metrics;
    Ok(QueryTiming {
        name: scenario.name.to_string(),
        ybang,
        diffprov_total: m.total(),
        diffprov_replay: m.replay,
        diffprov_reasoning: m.reasoning(),
        find_seeds: m.find_seeds,
        detect_divergence: m.detect_divergence,
        make_appear: m.make_appear,
        rounds: report.rounds.len(),
    })
}

/// Measures all eight scenarios (Figure 7/8 data).
pub fn all_timings() -> Result<Vec<QueryTiming>> {
    let mut out = Vec::new();
    for s in dp_sdn::all_sdn_scenarios() {
        out.push(measure(&s)?);
    }
    for s in dp_mapreduce::all_mr_scenarios() {
        out.push(measure(&s)?);
    }
    Ok(out)
}

/// Milliseconds, for display.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Microseconds, for display.
pub fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}
