//! `repro -- trace <scenario>` / `repro -- stats <scenario>`: run one
//! diagnostic scenario with a fully recording tracer (or dump the engine's
//! counters) for a single named scenario.
//!
//! The trace subcommand threads **one** shared [`Tracer`] through the good
//! execution, the bad execution, and the DiffProv pipeline, so engine
//! phases, provenance recording, tree extraction, and the alignment rounds
//! interleave in a single stream. The text summary mirrors the Figure 7/8
//! decomposition (and is derived from the very same aggregate the BENCH
//! numbers come from); the raw stream is written as JSONL and as a Chrome
//! `trace_event` file loadable in Perfetto / `chrome://tracing`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use diffprov_core::{DiffProv, Metrics, Report, Scenario};
use dp_ndlog::{join_profile_json, shard_loads_json};
use dp_trace::{Aggregate, Trace, Tracer};
use dp_types::Result;

/// The nine scenario names accepted by `trace` and `stats`.
pub const SCENARIO_NAMES: [&str; 9] = [
    "SDN1", "SDN2", "SDN3", "SDN4", "MR1-D", "MR1-I", "MR2-D", "MR2-I", "campus",
];

/// Constructs the named scenario (`None` for an unknown name). The campus
/// scenario uses the default (diagnosis-sized) configuration, not the
/// benchmark-sized one.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    if name == "campus" {
        return Some(dp_sdn::campus(&dp_sdn::CampusConfig::default()).scenario);
    }
    dp_sdn::all_sdn_scenarios()
        .into_iter()
        .chain(dp_mapreduce::all_mr_scenarios())
        .find(|s| s.name == name)
}

/// One traced diagnosis: the DiffProv report plus the full event stream.
pub struct TraceRun {
    /// The diagnosis result.
    pub report: Report,
    /// The drained trace (events + aggregate).
    pub trace: Trace,
}

/// Runs DiffProv on `scenario` with a fully recording tracer shared by
/// both executions and the pipeline, and drains the trace.
pub fn trace_scenario(scenario: &Scenario) -> Result<TraceRun> {
    let tracer = Tracer::full();
    let mut good_exec = scenario.good_exec.clone();
    let mut bad_exec = scenario.bad_exec.clone();
    good_exec.tracer = tracer.clone();
    bad_exec.tracer = tracer.clone();
    let scenario = Scenario {
        name: scenario.name,
        description: scenario.description,
        good_exec,
        bad_exec,
        good_event: scenario.good_event.clone(),
        bad_event: scenario.bad_event.clone(),
        expected_changes: scenario.expected_changes,
        expected_rounds: scenario.expected_rounds,
    };
    let dp = DiffProv {
        tracer: tracer.clone(),
        ..DiffProv::default()
    };
    let report = scenario.diagnose_with(&dp)?;
    Ok(TraceRun {
        report,
        trace: tracer.finish(),
    })
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the human-readable summary of a traced run: verdict, the
/// Figure 7/8 phase breakdown, per-span timing, and the rules ranked by
/// join effort.
pub fn summary(run: &TraceRun) -> String {
    let agg = &run.trace.aggregate;
    let m = Metrics::from_aggregate_delta(&Aggregate::default(), agg);
    let mut s = String::new();

    match &run.report.failure {
        None => {
            let _ = writeln!(
                s,
                "  verdict: {} change(s) in {} round(s), verified: {}",
                run.report.delta.len(),
                run.report.rounds.len(),
                run.report.verified
            );
        }
        Some(f) => {
            let _ = writeln!(s, "  verdict: FAILED — {f}");
        }
    }
    let _ = writeln!(
        s,
        "  trees: good {} / bad {} vertexes",
        run.report.good_tree_size, run.report.bad_tree_size
    );

    let _ = writeln!(s, "\n  phase breakdown (the Figure 7/8 decomposition):");
    let update_ns = agg.total_ns("diffprov.update_tree");
    let _ = writeln!(
        s,
        "    replay            {:>10.3} ms  (initial {:.3} ms + update-tree {:.3} ms)",
        m.replay.as_secs_f64() * 1e3,
        ms(agg.total_ns("diffprov.replay")),
        ms(update_ns)
    );
    let _ = writeln!(
        s,
        "    find seeds        {:>10.3} ms",
        m.find_seeds.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        s,
        "    detect divergence {:>10.3} ms  (incl. verify {:.3} ms)",
        m.detect_divergence.as_secs_f64() * 1e3,
        ms(agg.total_ns("diffprov.verify"))
    );
    let _ = writeln!(
        s,
        "    make appear       {:>10.3} ms",
        m.make_appear.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        s,
        "    total             {:>10.3} ms  (reasoning {:.3} ms)",
        m.total().as_secs_f64() * 1e3,
        m.reasoning().as_secs_f64() * 1e3
    );

    let _ = writeln!(s, "\n  span totals:");
    let mut spans: Vec<_> = agg.spans.iter().collect();
    spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    for (name, st) in spans {
        let _ = writeln!(
            s,
            "    {:<24} x{:<6} {:>10.3} ms  (mean {:>8.1} µs)",
            name,
            st.count,
            ms(st.total_ns),
            st.mean_ns() as f64 / 1e3
        );
    }

    // rule.candidates.<r> counts every tuple pairing a join examined for
    // rule <r> — the paper's measure of join effort.
    let mut rules: BTreeMap<&str, [u64; 4]> = BTreeMap::new();
    for (name, v) in &agg.counters {
        if let Some(r) = name.strip_prefix("rule.candidates.") {
            rules.entry(r).or_default()[0] = *v;
        } else if let Some(r) = name.strip_prefix("rule.matches.") {
            rules.entry(r).or_default()[1] = *v;
        } else if let Some(r) = name.strip_prefix("rule.fired.") {
            rules.entry(r).or_default()[2] = *v;
        } else if let Some(r) = name.strip_prefix("rule.attempts.") {
            rules.entry(r).or_default()[3] = *v;
        }
    }
    let mut rows: Vec<_> = rules.into_iter().collect();
    rows.sort_by(|a, b| b.1[0].cmp(&a.1[0]).then(a.0.cmp(b.0)));
    let shown = rows.len().min(10);
    let _ = writeln!(
        s,
        "\n  top rules by join effort ({shown} of {} rules):",
        rows.len()
    );
    let _ = writeln!(
        s,
        "    {:<16} {:>12} {:>10} {:>8} {:>10}",
        "rule", "candidates", "matches", "fired", "attempts"
    );
    for (rule, [cand, matches, fired, attempts]) in rows.into_iter().take(shown) {
        let _ = writeln!(
            s,
            "    {rule:<16} {cand:>12} {matches:>10} {fired:>8} {attempts:>10}"
        );
    }
    s
}

/// Replays the scenario's bad execution and renders the engine's
/// [`dp_ndlog::Stats`], per-rule join profile, and shard balance as JSON.
/// The `shard_balance` section surfaces [`dp_ndlog::Engine::shard_loads`]
/// (one interner size per shard, plus the max/min load ratio; `null` when
/// any shard is empty, `1.0000` when perfectly balanced).
pub fn stats_json(scenario: &Scenario) -> Result<String> {
    let replayed = scenario.bad_exec.replay()?;
    Ok(format!(
        "{{\"scenario\":{},\"stats\":{},\"join_profile\":{},\"shard_balance\":{}}}",
        dp_trace::json_string(scenario.name),
        replayed.engine.stats().to_json(),
        join_profile_json(replayed.engine.join_profile()),
        shard_loads_json(replayed.engine.shard_loads())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every advertised name resolves, and an unknown one does not.
    #[test]
    fn scenario_lookup() {
        for name in SCENARIO_NAMES {
            let s = find_scenario(name).expect(name);
            // The campus scenario's internal name is capitalized "Campus".
            assert!(s.name.eq_ignore_ascii_case(name), "{} vs {name}", s.name);
        }
        assert!(find_scenario("SDN9").is_none());
    }

    /// A traced diagnosis yields a skeleton, both export formats, and a
    /// summary whose phase totals derive from the same aggregate.
    #[test]
    fn traced_diagnosis_produces_outputs() {
        let scenario = find_scenario("SDN1").unwrap();
        let run = trace_scenario(&scenario).unwrap();
        assert!(run.report.succeeded());
        assert!(!run.trace.events.is_empty());
        assert!(run.trace.aggregate.span_count("engine.run") > 0);
        assert!(run.trace.aggregate.span_count("diffprov.find_seeds") == 1);
        let skel = run.trace.skeleton();
        assert!(skel.contains("B diffprov.replay"), "{skel}");
        let chrome = run.trace.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        let text = summary(&run);
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("top rules by join effort"), "{text}");
    }

    /// The stats dump names the scenario and carries all three sections,
    /// including the shard-balance summary (satellite of the metrics PR:
    /// `shard_loads()` existed but was never surfaced in the JSON).
    #[test]
    fn stats_json_shape() {
        let scenario = find_scenario("SDN1").unwrap();
        let json = stats_json(&scenario).unwrap();
        assert!(json.starts_with("{\"scenario\":\"SDN1\",\"stats\":{"), "{json}");
        assert!(json.contains("\"join_profile\":{"), "{json}");
        assert!(json.contains("\"shard_balance\":{\"loads\":["), "{json}");
        assert!(json.contains("\"max_over_min\":"), "{json}");
    }
}
