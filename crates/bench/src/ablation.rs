//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Butterfly effect vs. path length** — quantifies Section 2.5: the
//!    same one-entry fault, planted at the first hop of increasingly long
//!    forwarding chains. The plain tree diff grows linearly with the
//!    divergent path; DiffProv's answer stays at one tuple.
//! 2. **Noise insensitivity** — scales the campus network's forwarding
//!    tables and background traffic; the change set stays fixed because
//!    provenance only follows causally related state.
//! 3. **Checkpoint interval** — the replay-time/storage trade-off behind
//!    the query-time capture approach.

use std::sync::Arc;
use std::time::{Duration, Instant};

use diffprov_core::{QueryEvent, Scenario};
use dp_replay::Execution;
use dp_sdn::{campus, cfg_entry, deliver_at, pkt_in, sdn_program, CampusConfig, Topology};
use dp_types::prefix::{cidr, ip};
use dp_types::{NodeId, Result};

/// One row of the butterfly-effect ablation.
#[derive(Clone, Debug)]
pub struct ButterflyRow {
    /// Number of switches after the divergence point.
    pub hops: usize,
    /// Good-tree vertexes.
    pub good: usize,
    /// Bad-tree vertexes.
    pub bad: usize,
    /// Plain-diff vertexes.
    pub plain_diff: usize,
    /// DiffProv's answer size.
    pub diffprov: usize,
}

/// Builds an SDN1-style scenario where the good and bad paths each run
/// through `hops` dedicated switches after the faulty hop.
pub fn butterfly_scenario(hops: usize) -> Scenario {
    assert!(hops >= 1);
    let mut topo = Topology::new("ctl");
    topo.switch("S1");
    // Two disjoint chains: G1..Gn -> web1, B1..Bn -> web2.
    for i in 1..=hops {
        topo.switch(&format!("G{i}"));
        topo.switch(&format!("B{i}"));
    }
    topo.link("S1", "G1");
    topo.link("S1", "B1");
    for i in 1..hops {
        let (ga, gb) = (format!("G{i}"), format!("G{}", i + 1));
        topo.link(&ga, &gb);
        let (ba, bb) = (format!("B{i}"), format!("B{}", i + 1));
        topo.link(&ba, &bb);
    }
    let _p_web1 = topo.host(&format!("G{hops}"), "web1");
    let _p_web2 = topo.host(&format!("B{hops}"), "web2");

    let program = sdn_program("ctl").expect("program builds");
    let mut exec = Execution::new(program);
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = cidr("0.0.0.0/0");
    let mut rid = 100;
    let mut cfg = |exec: &mut Execution, sw: &str, prio, sm, port| {
        exec.log
            .insert(10, ctl.clone(), cfg_entry(rid, sw, prio, sm, any, port));
        rid += 1;
    };
    // The fault at S1: the specific rule towards the good chain is /24
    // instead of /23; the fallback goes down the bad chain.
    cfg(&mut exec, "S1", 10, cidr("4.3.2.0/24"), topo.port_towards("S1", "G1"));
    cfg(&mut exec, "S1", 1, any, topo.port_towards("S1", "B1"));
    // Both chains simply forward onward.
    for i in 1..=hops {
        let g = format!("G{i}");
        let g_next = if i == hops { "web1".to_string() } else { format!("G{}", i + 1) };
        let p = topo.port_towards(&g, &g_next);
        cfg(&mut exec, &g, 1, any, p);
        let b = format!("B{i}");
        let b_next = if i == hops { "web2".to_string() } else { format!("B{}", i + 1) };
        let p = topo.port_towards(&b, &b_next);
        cfg(&mut exec, &b, 1, any, p);
    }
    let dst = ip("10.0.0.80");
    exec.log.insert(1_000, "S1", pkt_in(1, ip("4.3.2.1"), dst, 6, 512));
    exec.log.insert(2_000, "S1", pkt_in(2, ip("4.3.3.1"), dst, 6, 512));
    Scenario {
        name: "butterfly",
        description: "one faulty entry, increasingly long divergent paths",
        good_event: QueryEvent::new(deliver_at("web1", 1, ip("4.3.2.1"), dst, 6, 512), u64::MAX),
        bad_event: QueryEvent::new(deliver_at("web2", 2, ip("4.3.3.1"), dst, 6, 512), u64::MAX),
        bad_exec: exec.clone(),
        good_exec: exec,
        expected_changes: 1,
        expected_rounds: 1,
    }
}

/// Runs the butterfly ablation for the given chain lengths.
pub fn butterfly(hop_counts: &[usize]) -> Result<Vec<ButterflyRow>> {
    let mut out = Vec::new();
    for &hops in hop_counts {
        let s = butterfly_scenario(hops);
        let row = crate::table1::measure(&s)?;
        out.push(ButterflyRow {
            hops,
            good: row.good,
            bad: row.bad,
            plain_diff: row.plain_diff,
            diffprov: row.diffprov_total(),
        });
    }
    Ok(out)
}

/// One row of the noise-insensitivity ablation.
#[derive(Clone, Debug)]
pub struct NoiseRow {
    /// Configured entries in the campus network.
    pub entries: usize,
    /// Background packets streamed.
    pub background: usize,
    /// DiffProv's change-set size (must stay constant).
    pub delta: usize,
    /// Whether the misconfigured entry was named.
    pub names_root_cause: bool,
    /// Query turnaround.
    pub elapsed: Duration,
}

/// Scales the campus network's tables and traffic; the diagnosis must not
/// change.
pub fn noise(scales: &[(usize, usize)]) -> Result<Vec<NoiseRow>> {
    let mut out = Vec::new();
    for &(bulk, background) in scales {
        let campus = campus(&CampusConfig {
            bulk_entries_per_router: bulk,
            background_packets: background,
            ..Default::default()
        });
        let t = Instant::now();
        let report = campus.scenario.diagnose()?;
        let elapsed = t.elapsed();
        let names_root_cause = report.delta.iter().any(|c| {
            c.before
                .as_ref()
                .map(|b| b.args.first() == Some(&dp_types::Value::Int(2)))
                == Some(true)
        });
        out.push(NoiseRow {
            entries: campus.entry_count,
            background,
            delta: report.delta.len(),
            names_root_cause,
            elapsed,
        });
    }
    Ok(out)
}

/// One row of the checkpoint-interval ablation.
#[derive(Clone, Debug)]
pub struct CheckpointRow {
    /// Checkpoint interval in base events (`None` = no checkpoints).
    pub interval: Option<usize>,
    /// Checkpoints stored.
    pub checkpoints: usize,
    /// Time to answer a query at the log horizon.
    pub replay_time: Duration,
}

/// Sweeps the checkpoint interval on a packet-heavy execution.
pub fn checkpoints(packets: usize, intervals: &[usize]) -> Result<Vec<CheckpointRow>> {
    // Reuse the two-switch pipeline from the storage experiments.
    let mut topo = Topology::new("ctl");
    topo.switches(&["S1", "S2"]);
    topo.link("S1", "S2");
    let p_host = topo.host("S2", "sink");
    let program = sdn_program("ctl")?;
    let mut exec = Execution::new(Arc::clone(&program));
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = cidr("0.0.0.0/0");
    exec.log.insert(
        10,
        ctl.clone(),
        cfg_entry(1, "S1", 1, any, any, topo.port_towards("S1", "S2")),
    );
    exec.log
        .insert(10, ctl, cfg_entry(2, "S2", 1, any, any, p_host));
    let trace = dp_sdn::generate(&dp_sdn::TraceConfig {
        packets,
        ..Default::default()
    });
    for (i, p) in trace.packets.into_iter().enumerate() {
        exec.log.insert(100 + i as u64, "S1", p);
    }
    let horizon = exec.log.horizon();

    let mut out = Vec::new();
    let t0 = Instant::now();
    exec.replay()?;
    out.push(CheckpointRow {
        interval: None,
        checkpoints: 0,
        replay_time: t0.elapsed(),
    });
    for &iv in intervals {
        let store = exec.build_checkpoints(iv)?;
        let t0 = Instant::now();
        exec.replay_from_checkpoint(&store, horizon)?;
        out.push(CheckpointRow {
            interval: Some(iv),
            checkpoints: store.len(),
            replay_time: t0.elapsed(),
        });
    }
    Ok(out)
}
