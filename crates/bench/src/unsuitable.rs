//! Section 6.3: how DiffProv handles unsuitable reference events.
//!
//! The paper issues ten queries with randomly picked (bad) references in
//! the SDN1 and MR1-D scenarios: every one fails, three because the seeds
//! had different types and seven because aligning would require changing
//! immutable tuples — and in each case the error output tells the operator
//! what was wrong with the chosen reference.

use diffprov_core::{DiffProv, Failure, QueryEvent};
use dp_mapreduce::{build_job, generate as gen_corpus, reducer_of, CorpusConfig, JobConfig};
use dp_sdn::{deliver_at, pkt_in, sdn1};
use dp_types::prefix::{cidr, ip};
use dp_types::{tuple, Result, TupleRef};

/// The observed failure category of one unsuitable-reference query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Category {
    /// Seeds of different types: the trees are not comparable.
    SeedTypeMismatch,
    /// Alignment would require changing an immutable tuple.
    ImmutableChange,
    /// Some other reported failure.
    Other(String),
    /// The query succeeded (degenerate references align trivially).
    Succeeded,
}

/// The result of one unsuitable-reference query.
#[derive(Clone, Debug)]
pub struct UnsuitableResult {
    /// Which scenario and reference was used.
    pub label: String,
    /// The failure category DiffProv reported.
    pub category: Category,
    /// The human-readable diagnostic.
    pub diagnostic: String,
}

fn classify(report: &diffprov_core::Report) -> (Category, String) {
    match &report.failure {
        None => (Category::Succeeded, "aligned (empty change set)".to_string()),
        Some(f @ Failure::SeedTypeMismatch { .. }) => (Category::SeedTypeMismatch, f.to_string()),
        Some(f @ Failure::ImmutableChange { .. }) => (Category::ImmutableChange, f.to_string()),
        Some(f) => (Category::Other(f.to_string()), f.to_string()),
    }
}

/// Runs the unsuitable-reference queries for SDN1.
///
/// Unsuitable references tried: configuration tuples (flow entries, link
/// wiring, controller state) whose seeds are not packets, a correct
/// delivery whose packet entered at a *different* ingress switch, and the
/// degenerate self-reference.
pub fn sdn1_unsuitable() -> Result<Vec<UnsuitableResult>> {
    let mut s = sdn1();
    // Add a packet with a trusted source entering at a different ingress
    // (S5): it is delivered correctly to web1 via S6, but is a useless
    // reference for a packet that entered at S1.
    let dst = ip("10.0.0.80");
    let other_src = ip("4.3.2.7");
    // S5 carries no entries in the base scenario; give it a route to S6
    // (port 2) so the alternate-ingress packet reaches web1.
    s.good_exec.log.insert(
        10,
        "ctl",
        dp_sdn::cfg_entry(550, "S5", 1, cidr("0.0.0.0/0"), cidr("0.0.0.0/0"), 2),
    );
    s.good_exec
        .log
        .insert(900, "S5", pkt_in(50, other_src, dst, 6, 512));
    s.bad_exec = s.good_exec.clone();

    let mut out = Vec::new();
    let dp = DiffProv::default();
    let bad = &s.bad_event;

    // References 1-3: configuration/infrastructure tuples whose seeds are
    // not packets (seed-type mismatch).
    let cfg_refs = vec![
        (
            "flow entry as reference",
            // R1 as installed on S2 (port 3 leads to S6).
            QueryEvent::new(
                TupleRef::new(
                    "S2",
                    tuple!("flowEntry", 1, 10, cidr("4.3.2.0/24"), cidr("0.0.0.0/0"), 3),
                ),
                u64::MAX,
            ),
        ),
        (
            "link tuple as reference",
            QueryEvent::new(TupleRef::new("S1", tuple!("link", 1, "S2")), u64::MAX),
        ),
        (
            "controller state as reference",
            QueryEvent::new(TupleRef::new("ctl", tuple!("switchUp", "S2")), u64::MAX),
        ),
    ];
    for (label, good_ev) in cfg_refs {
        let report = dp.diagnose(&s.good_exec, &good_ev, &s.bad_exec, bad)?;
        let (category, diagnostic) = classify(&report);
        out.push(UnsuitableResult {
            label: format!("SDN1: {label}"),
            category,
            diagnostic,
        });
    }

    // Reference 4: a correct delivery whose packet entered at a different
    // ingress switch — aligning would require moving the (immutable) bad
    // packet's entry point.
    let good_ev = QueryEvent::new(deliver_at("web1", 50, other_src, dst, 6, 512), u64::MAX);
    let report = dp.diagnose(&s.good_exec, &good_ev, &s.bad_exec, bad)?;
    let (category, diagnostic) = classify(&report);
    out.push(UnsuitableResult {
        label: "SDN1: reference packet entered at a different ingress".to_string(),
        category,
        diagnostic,
    });

    // Reference 5: the bad event as its own reference. The trees align
    // trivially with an empty change set — DiffProv telling the operator
    // the reference exhibits the same behaviour, not the correct one.
    let report = dp.diagnose(&s.good_exec, bad, &s.bad_exec, bad)?;
    let (category, diagnostic) = classify(&report);
    out.push(UnsuitableResult {
        label: "SDN1: bad event used as its own reference".to_string(),
        category,
        diagnostic,
    });
    Ok(out)
}

/// Runs the unsuitable-reference queries for MR1-D.
pub fn mr1d_unsuitable() -> Result<Vec<UnsuitableResult>> {
    let corpus_cfg = CorpusConfig {
        files: 2,
        lines_per_file: 16,
        words_per_line: 5,
        vocabulary: 24,
        ..Default::default()
    };
    let files = gen_corpus(&corpus_cfg);
    let good_cfg = JobConfig {
        reducers: 4,
        ..Default::default()
    };
    let bad_cfg = JobConfig {
        reducers: 5,
        ..Default::default()
    };
    let bad_exec = build_job(&bad_cfg, &files);
    let good_exec = build_job(&good_cfg, &files);
    // A job over a *different* corpus (immutable inputs differ).
    let other_files = gen_corpus(&CorpusConfig {
        seed: 99,
        ..corpus_cfg
    });
    let other_exec = build_job(&good_cfg, &other_files);

    // The bad event: a word count on the wrong reducer.
    let word = "w000";
    let count = dp_mapreduce::expected_counts(&files, false)[word];
    let bad_ev = QueryEvent::new(
        TupleRef::new(
            format!("r{}", reducer_of(word, 5)).as_str(),
            tuple!("wordCount", word, count),
        ),
        u64::MAX,
    );

    let dp = DiffProv::default();
    let mut out = Vec::new();

    // References 1-3: job-state tuples (seed-type mismatch).
    let cfg_refs = vec![
        (
            "configuration entry as reference",
            QueryEvent::new(
                TupleRef::new("drv", tuple!("mrConfig", "mapreduce.job.reduces", 4)),
                u64::MAX,
            ),
        ),
        (
            "input-file record as reference",
            QueryEvent::new(
                TupleRef::new(
                    "drv",
                    dp_types::Tuple::new(
                        "inputFile",
                        vec![
                            dp_types::Value::str(&files[0].name),
                            dp_types::Value::Sum(files[0].checksum),
                            dp_types::Value::Int(files[0].bytes as i64),
                        ],
                    ),
                ),
                u64::MAX,
            ),
        ),
        (
            "worker registration as reference",
            QueryEvent::new(TupleRef::new("drv", tuple!("worker", "m0")), u64::MAX),
        ),
    ];
    for (label, good_ev) in cfg_refs {
        let report = dp.diagnose(&good_exec, &good_ev, &bad_exec, &bad_ev)?;
        let (category, diagnostic) = classify(&report);
        out.push(UnsuitableResult {
            label: format!("MR1-D: {label}"),
            category,
            diagnostic,
        });
    }

    // References 4-5: word counts from the job over a *different* corpus —
    // aligning would require changing the immutable input records. Words
    // whose counts coincide across the corpora would align trivially, so
    // pick words where the counts differ.
    let bad_counts = dp_mapreduce::expected_counts(&files, false);
    let other_counts = dp_mapreduce::expected_counts(&other_files, false);
    let differing: Vec<&String> = other_counts
        .iter()
        .filter(|(w, c)| bad_counts.get(*w) != Some(*c))
        .map(|(w, _)| w)
        .take(2)
        .collect();
    let mut added = 0;
    for w in differing {
        let Some(&c) = other_counts.get(w) else { continue };
        let good_ev = QueryEvent::new(
            TupleRef::new(
                format!("r{}", reducer_of(w, 4)).as_str(),
                tuple!("wordCount", w.as_str(), c),
            ),
            u64::MAX,
        );
        let report = dp.diagnose(&other_exec, &good_ev, &bad_exec, &bad_ev)?;
        let (category, diagnostic) = classify(&report);
        added += 1;
        out.push(UnsuitableResult {
            label: format!("MR1-D: reference #{added} from a job over different input"),
            category,
            diagnostic,
        });
    }
    Ok(out)
}

/// All unsuitable-reference queries, SDN1 + MR1-D.
pub fn all_unsuitable() -> Result<Vec<UnsuitableResult>> {
    let mut out = sdn1_unsuitable()?;
    out.extend(mr1d_unsuitable()?);
    Ok(out)
}
