//! # dp-bench — the evaluation harness
//!
//! One module per table/figure of the paper's Section 6, each exposing a
//! function that runs the experiment and returns structured results. The
//! `repro` binary prints them in the paper's layout:
//!
//! ```text
//! cargo run -p dp-bench --release --bin repro -- all
//! ```
//!
//! | subcommand   | reproduces                                            |
//! |--------------|-------------------------------------------------------|
//! | `table1`     | Table 1 — answer sizes of five diagnostic techniques  |
//! | `fig5`       | Figure 5 — logging rate vs. traffic rate              |
//! | `fig6`       | Figure 6 — logging rate vs. packet size               |
//! | `fig7`       | Figure 7 — query turnaround, DiffProv vs. Y!          |
//! | `fig8`       | Figure 8 — reasoning-time decomposition               |
//! | `unsuitable` | §6.3 — unsuitable reference events                    |
//! | `latency`    | §6.4 — logging latency overhead                       |
//! | `mrstorage`  | §6.5 — MapReduce log sizes                            |
//! | `complex`    | §6.7 — campus network with faults and noise           |
//! | `ablation`   | design-choice ablations (butterfly, noise, checkpoints)|
//! | `enginebench`| indexed vs. naive joins at scale → `BENCH_engine.json` |
//! | `trace <s>`  | one scenario under a full tracer → summary + trace files|
//! | `stats <s>`  | engine counters/join profile of one scenario, as JSON  |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod complex;
pub mod engine_bench;
pub mod harness;
pub mod latency;
pub mod metrics_cmd;
pub mod query;
pub mod storage;
pub mod table1;
pub mod trace_cmd;
pub mod unsuitable;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unsuitable::Category;

    /// The headline claim of the paper (Table 1's shape): classical
    /// provenance returns tens-to-hundreds of vertexes, the plain diff is
    /// no better (sometimes *worse* than either tree), and DiffProv
    /// returns one or two changes.
    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1::table1().unwrap();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.good >= 40, "{}: good tree too small ({})", r.query, r.good);
            assert!(r.bad >= 3, "{}: bad tree too small ({})", r.query, r.bad);
            assert!(r.diffprov_total() <= 2, "{}", r.query);
            assert!(r.verified, "{}", r.query);
            // Dramatic reduction vs. the Y! baseline.
            assert!(
                r.good / r.diffprov_total().max(1) >= 20,
                "{}: reduction factor too small",
                r.query
            );
        }
        // SDN4 takes two rounds of one change each.
        let sdn4 = rows.iter().find(|r| r.query == "SDN4").unwrap();
        assert_eq!(sdn4.diffprov_per_round, vec![1, 1]);
        // The butterfly effect: in at least one scenario, the plain diff is
        // larger than either individual tree (Section 2.5).
        assert!(
            rows.iter().any(|r| r.plain_diff > r.good.max(r.bad)),
            "no scenario shows the butterfly effect"
        );
    }

    /// Figure 5's shape: logging rate is linear in the traffic rate and
    /// stays below the SSD's sequential write rate even at 10 Gbps.
    #[test]
    fn fig5_is_linear_and_under_ssd() {
        let cost = storage::packet_log_cost(2_000, 500).unwrap();
        assert!(cost.bytes_per_packet > 0.0);
        // The real on-disk record is in the same ballpark as the model:
        // codec framing and checksums cost something, but not multiples.
        assert!(cost.disk_bytes_per_packet > 0.0);
        assert!(
            cost.disk_bytes_per_packet < cost.bytes_per_packet * 4.0,
            "sealed layers cost {} B/packet vs modeled {}",
            cost.disk_bytes_per_packet,
            cost.bytes_per_packet
        );
        let points = storage::fig5(&cost);
        for p in &points {
            assert!(p.within_ssd(), "{p}");
        }
        // Linearity: rate ratio equals traffic ratio.
        let first = &points[0];
        let last = points.last().unwrap();
        let ratio = last.logging_rate / first.logging_rate;
        let traffic_ratio = last.traffic_bps / first.traffic_bps;
        assert!((ratio - traffic_ratio).abs() / traffic_ratio < 1e-9);
    }

    /// Figure 6's shape: at a fixed bit rate, the logging rate *decreases*
    /// as packets grow (fixed-size records, fewer packets per second).
    #[test]
    fn fig6_decreases_with_packet_size() {
        let costs: Vec<(i64, storage::PacketLogCost)> = [500i64, 1000, 1500]
            .iter()
            .map(|&len| (len, storage::packet_log_cost(500, len).unwrap()))
            .collect();
        // Per-packet record size is independent of the packet length.
        let b0 = costs[0].1.bytes_per_packet;
        let d0 = costs[0].1.disk_bytes_per_packet;
        for (_, c) in &costs {
            assert!((c.bytes_per_packet - b0).abs() < 1e-9);
            // Real sealed records are fixed-size too (header and payload
            // fields don't depend on the packet length knob).
            assert!((c.disk_bytes_per_packet - d0).abs() < 1e-9);
        }
        let points = storage::fig6(&costs);
        assert!(points[0].logging_rate > points[1].logging_rate);
        assert!(points[1].logging_rate > points[2].logging_rate);
        assert!(points[0].disk_logging_rate > points[1].disk_logging_rate);
        assert!(points[1].disk_logging_rate > points[2].disk_logging_rate);
    }

    /// Section 6.5: the MapReduce log holds metadata only — orders of
    /// magnitude smaller than the corpus.
    #[test]
    fn mr_log_is_metadata_sized() {
        let m = storage::mr_storage(200, 4).unwrap();
        assert!(m.corpus_bytes > 10_000);
        assert!(
            (m.log_bytes as f64) < (m.corpus_bytes as f64) * 0.5,
            "log {} vs corpus {}",
            m.log_bytes,
            m.corpus_bytes
        );
    }

    /// Section 6.3: every unsuitable reference fails (or degenerates to an
    /// empty change set), with both failure categories represented.
    #[test]
    fn unsuitable_references_fail_informatively() {
        let results = unsuitable::all_unsuitable().unwrap();
        assert!(results.len() >= 9, "expected ~10 queries, got {}", results.len());
        let mismatches = results
            .iter()
            .filter(|r| r.category == Category::SeedTypeMismatch)
            .count();
        let immutables = results
            .iter()
            .filter(|r| r.category == Category::ImmutableChange)
            .count();
        assert!(mismatches >= 3, "want >=3 seed mismatches: {results:#?}");
        assert!(immutables >= 2, "want >=2 immutable failures: {results:#?}");
        for r in &results {
            match &r.category {
                Category::Succeeded => assert!(
                    r.label.contains("own reference"),
                    "only the self-reference may align: {r:?}"
                ),
                _ => assert!(!r.diagnostic.is_empty()),
            }
        }
    }

    /// Figure 7/8's shape: turnaround is replay-dominated, reasoning is
    /// orders of magnitude smaller, and DiffProv costs more than a single
    /// Y! query (it replays more).
    #[test]
    fn query_times_are_replay_dominated() {
        let timings = query::all_timings().unwrap();
        assert_eq!(timings.len(), 8);
        for t in &timings {
            assert!(
                t.diffprov_replay >= t.diffprov_reasoning,
                "{}: reasoning dominates?",
                t.name
            );
            assert!(
                t.diffprov_total >= t.ybang,
                "{}: DiffProv faster than a single provenance query?",
                t.name
            );
        }
        // SDN4 runs two rounds.
        let sdn4 = timings.iter().find(|t| t.name == "SDN4").unwrap();
        assert_eq!(sdn4.rounds, 2);
    }

    /// Ablation: the plain diff grows with the divergent path length
    /// while DiffProv's answer stays at one tuple.
    #[test]
    fn butterfly_effect_grows_with_path_length() {
        let rows = ablation::butterfly(&[1, 3, 6]).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].plain_diff > w[0].plain_diff, "{rows:?}");
            assert!(w[1].good > w[0].good);
        }
        for r in &rows {
            assert_eq!(r.diffprov, 1, "{rows:?}");
        }
        // At the longest chain the diff dwarfs the answer by 2 orders.
        assert!(rows.last().unwrap().plain_diff >= 100, "{rows:?}");
    }

    /// Ablation: scaling the campus tables and traffic does not change
    /// the diagnosis.
    #[test]
    fn noise_does_not_change_the_diagnosis() {
        let rows = ablation::noise(&[(0, 0), (4, 120)]).unwrap();
        for r in &rows {
            assert!(r.delta <= 2, "{rows:?}");
            assert!(r.names_root_cause, "{rows:?}");
        }
        assert!(rows[1].entries > rows[0].entries * 2);
    }

    /// Ablation: checkpoints reduce query-time replay.
    #[test]
    fn checkpoints_speed_up_replay() {
        let rows = ablation::checkpoints(2_000, &[256]).unwrap();
        let full = rows[0].replay_time;
        let fast = rows[1].replay_time;
        assert!(rows[1].checkpoints > 0);
        assert!(fast < full, "checkpointed {fast:?} !< full {full:?}");
    }

    /// Section 6.7: the root cause is found despite 20 extra faults and
    /// background traffic, and the plain diff is again larger than either
    /// tree.
    #[test]
    fn complex_network_diagnosis() {
        let r = complex::complex(&dp_sdn::CampusConfig {
            background_packets: 60,
            bulk_entries_per_router: 2,
            ..Default::default()
        })
        .unwrap();
        assert!(r.entries > 100);
        assert_eq!(r.extra_faults, 20);
        assert!(r.delta <= 2, "{r:?}");
        assert!(r.names_root_cause, "{r:?}");
        assert!(r.verified, "{r:?}");
    }
}
