//! Engine throughput benchmark: hash-indexed vs. naive nested-loop joins
//! on the §6.7 campus workload, plus indexed-vs-naive parity checks on
//! every scenario.
//!
//! The results are written to `BENCH_engine.json` by `repro -- enginebench`
//! so the engine's perf trajectory is machine-readable across revisions.

use std::sync::Arc;
use std::time::Instant;

use dp_ndlog::{Engine, Program, VecSink};
use dp_replay::{BaseOp, Execution};
use dp_sdn::{campus, CampusConfig};
use dp_types::{FieldType, NodeId, Result, Schema, SchemaRegistry, Tuple};

/// Timing and counters for one indexed-vs-naive comparison run.
#[derive(Clone, Debug)]
pub struct EngineBenchResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// Wall time of the indexed replay (seconds).
    pub indexed_secs: f64,
    /// Wall time of the naive nested-loop replay (seconds).
    pub naive_secs: f64,
    /// Events processed during the replay (identical in both modes).
    pub events: u64,
    /// Join steps answered by an index probe (indexed run).
    pub join_probes: u64,
    /// Join steps that fell back to a table scan (indexed run).
    pub join_scans: u64,
    /// Fraction of join steps answered by a probe (indexed run).
    pub index_hit_rate: f64,
    /// High-water mark of live tuples across all nodes.
    pub peak_tuples: u64,
    /// Whether the two runs emitted byte-identical provenance streams.
    pub streams_identical: bool,
}

impl EngineBenchResult {
    /// Naive time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.indexed_secs.max(1e-12)
    }

    /// Engine throughput of the indexed run, in events per second.
    pub fn tuples_per_sec(&self) -> f64 {
        self.events as f64 / self.indexed_secs.max(1e-12)
    }
}

/// Indexed-vs-naive agreement on one scenario: vertex counts of the good
/// and bad provenance trees (the Table 1 inputs) and stream equality.
#[derive(Clone, Debug)]
pub struct ScenarioParity {
    /// Scenario name ("SDN1", ..., "MR2-I", "campus").
    pub name: String,
    /// Good-tree vertex count (identical in both modes or the run fails).
    pub good_vertexes: usize,
    /// Bad-tree vertex count.
    pub bad_vertexes: usize,
    /// Whether indexed and naive replays emitted identical event streams
    /// and identical tree sizes, for both the good and the bad execution.
    pub identical: bool,
}

/// Replays `exec` into a buffering sink, timing only the evaluation loop.
/// Runs `runs` times and reports the best time (the shared machines the
/// benchmark runs on are noisy; the minimum is the least-perturbed run).
fn timed_replay(exec: &Execution, naive: bool, runs: usize) -> Result<(Engine<VecSink>, f64)> {
    let mut best: Option<(Engine<VecSink>, f64)> = None;
    for _ in 0..runs.max(1) {
        let mut eng = Engine::new(Arc::clone(&exec.program), VecSink::default());
        eng.set_naive_join(naive);
        exec.log.schedule_into(&mut eng, None)?;
        let t = Instant::now();
        eng.run()?;
        let secs = t.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((eng, secs));
        }
    }
    Ok(best.expect("at least one run"))
}

/// Runs the campus workload at benchmark scale in both join modes.
///
/// `bulk_entries_per_router` is chosen so the network holds at least
/// `min_entries` forwarding/ACL entries (the paper's setup has 757 k; the
/// acceptance bar here is 100 k+). Background traffic is kept small so the
/// measurement isolates rule evaluation over large tables rather than
/// packet-count scaling (which is linear and identical in both modes).
pub fn engine_bench(min_entries: usize, background_packets: usize) -> Result<EngineBenchResult> {
    // entries ≈ 16 routers × 15 zones × (1 + bulk); solve for bulk.
    let per_bulk = 16 * 15;
    let bulk = min_entries / per_bulk + 1;
    let cfg = CampusConfig {
        bulk_entries_per_router: bulk,
        background_packets,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    let (indexed, indexed_secs) = timed_replay(exec, false, 3)?;
    let (naive, naive_secs) = timed_replay(exec, true, 3)?;
    let streams_identical = indexed.sink().events == naive.sink().events;
    let stats = indexed.stats();
    Ok(EngineBenchResult {
        entries: c.entry_count,
        background_packets,
        indexed_secs,
        naive_secs,
        events: stats.events,
        join_probes: stats.join_probes,
        join_scans: stats.join_scans,
        index_hit_rate: stats.index_hit_rate(),
        peak_tuples: stats.peak_tuples,
        streams_identical,
    })
}

/// Result of the FIB-lookup join benchmark: the equality join the index
/// planner targets, run over the campus forwarding table.
#[derive(Clone, Debug)]
pub struct FibBenchResult {
    /// Forwarding entries in the joined table (taken from the campus log).
    pub entries: usize,
    /// Lookup queries streamed through the join.
    pub queries: usize,
    /// Wall time with hash-indexed joins (seconds).
    pub indexed_secs: f64,
    /// Wall time with naive nested-loop joins (seconds).
    pub naive_secs: f64,
    /// Join candidates examined by the indexed run.
    pub indexed_candidates: u64,
    /// Join candidates examined by the naive run.
    pub naive_candidates: u64,
    /// Whether both runs emitted byte-identical provenance streams.
    pub streams_identical: bool,
}

impl FibBenchResult {
    /// Naive time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.indexed_secs.max(1e-12)
    }
}

/// The join-bound benchmark: FIB lookups against the campus forwarding
/// table.
///
/// The campus end-to-end replay is dominated by per-event costs and by the
/// `fwd` rule's longest-prefix matching, which is constraint-bound (no
/// column of `flowEntry` is equality-bound by a packet), so it bounds the
/// campus wall-clock gap at the `install` rule's share. This benchmark
/// isolates the access path the planner actually optimizes: an equality
/// join `fib(@C, Rid, Pt) :- query(@C, Sw, Dst), cfgEntry(@C, Rid, Sw,
/// Prio, SM, Dst, Pt)` keyed on (switch, destination prefix), over the
/// *real* campus `cfgEntry` tuples. Naive evaluation scans all `entries`
/// rows per lookup — quadratic; the planner probes one hash bucket.
pub fn fib_bench(min_entries: usize, queries: usize) -> Result<FibBenchResult> {
    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets: 0,
        ..Default::default()
    };
    let c = campus(&cfg);

    let mut reg = SchemaRegistry::new();
    use dp_types::TableKind::*;
    reg.declare(
        Schema::new(
            "cfgEntry",
            MutableBase,
            [
                ("rid", FieldType::Int),
                ("sw", FieldType::Str),
                ("prio", FieldType::Int),
                ("srcMatch", FieldType::Prefix),
                ("dstMatch", FieldType::Prefix),
                ("port", FieldType::Int),
            ],
        )
        .with_key([0]),
    );
    reg.declare(Schema::new(
        "query",
        ImmutableBase,
        [("sw", FieldType::Str), ("dst", FieldType::Prefix)],
    ));
    reg.declare(Schema::new(
        "fib",
        Derived,
        [("rid", FieldType::Int), ("port", FieldType::Int)],
    ));
    let program: Arc<Program> = Program::builder(reg)
        .rules_text(
            "lkup fib(@C, Rid, Pt) :- query(@C, Sw, Dst), \
             cfgEntry(@C, Rid, Sw, Prio, SM, Dst, Pt).",
        )?
        .build()?;

    // The real campus forwarding state, straight from the scenario log.
    let ctl = NodeId::new("ctl");
    let entries: Vec<Tuple> = c
        .scenario
        .bad_exec
        .log
        .events()
        .iter()
        .filter(|e| e.op == BaseOp::Insert && e.tuple.table.as_str() == "cfgEntry")
        .map(|e| e.tuple.clone())
        .collect();
    let mut exec = Execution::new(program);
    for (i, t) in entries.iter().enumerate() {
        exec.log.insert(10 + i as u64, ctl.clone(), t.clone());
    }
    // Lookups spread deterministically across the table: every query keys
    // on an existing (switch, dstMatch) pair, so each probe hits.
    let stride = (entries.len() / queries.max(1)).max(1);
    let base = 10 + entries.len() as u64;
    for (qi, t) in entries.iter().step_by(stride).take(queries).enumerate() {
        exec.log.insert(
            base + qi as u64,
            ctl.clone(),
            Tuple::new("query", vec![t.args[1].clone(), t.args[4].clone()]),
        );
    }

    let (indexed, indexed_secs) = timed_replay(&exec, false, 3)?;
    let (naive, naive_secs) = timed_replay(&exec, true, 3)?;
    Ok(FibBenchResult {
        entries: entries.len(),
        queries,
        indexed_secs,
        naive_secs,
        indexed_candidates: indexed.stats().join_candidates,
        naive_candidates: naive.stats().join_candidates,
        streams_identical: indexed.sink().events == naive.sink().events,
    })
}

/// Replays one execution in both modes and checks stream equality.
fn exec_parity(exec: &Execution) -> Result<bool> {
    let (indexed, _) = timed_replay(exec, false, 1)?;
    let (naive, _) = timed_replay(exec, true, 1)?;
    Ok(indexed.sink().events == naive.sink().events)
}

/// Tree vertex count for an event, replayed with the given join mode.
fn tree_len(
    exec: &Execution,
    event: &diffprov_core::QueryEvent,
    naive: bool,
) -> Result<Option<usize>> {
    let mut exec = exec.clone();
    exec.naive_join = naive;
    let replayed = exec.replay()?;
    Ok(replayed.query_at(&event.tref, event.at).map(|t| t.len()))
}

/// Checks every scenario (the 8 Table 1 queries plus the campus network)
/// for indexed-vs-naive agreement.
pub fn scenario_parity() -> Result<Vec<ScenarioParity>> {
    let mut scenarios: Vec<diffprov_core::Scenario> = dp_sdn::all_sdn_scenarios();
    scenarios.extend(dp_mapreduce::all_mr_scenarios());
    scenarios.push(campus(&CampusConfig::default()).scenario);
    let mut out = Vec::new();
    for s in &scenarios {
        let good_i = tree_len(&s.good_exec, &s.good_event, false)?;
        let good_n = tree_len(&s.good_exec, &s.good_event, true)?;
        let bad_i = tree_len(&s.bad_exec, &s.bad_event, false)?;
        let bad_n = tree_len(&s.bad_exec, &s.bad_event, true)?;
        let identical = good_i == good_n
            && bad_i == bad_n
            && exec_parity(&s.good_exec)?
            && exec_parity(&s.bad_exec)?;
        out.push(ScenarioParity {
            name: s.name.to_string(),
            good_vertexes: good_i.unwrap_or(0),
            bad_vertexes: bad_i.unwrap_or(0),
            identical,
        });
    }
    Ok(out)
}

/// Renders the benchmark results as a JSON document (hand-rolled; the
/// workspace builds offline, without serde).
pub fn to_json(
    bench: &EngineBenchResult,
    fib: &FibBenchResult,
    parity: &[ScenarioParity],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"ndlog-engine\",\n  \"campus\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", bench.entries));
    s.push_str(&format!(
        "    \"background_packets\": {},\n",
        bench.background_packets
    ));
    s.push_str(&format!("    \"indexed_secs\": {:.6},\n", bench.indexed_secs));
    s.push_str(&format!("    \"naive_secs\": {:.6},\n", bench.naive_secs));
    s.push_str(&format!("    \"speedup\": {:.2},\n", bench.speedup()));
    s.push_str(&format!("    \"events\": {},\n", bench.events));
    s.push_str(&format!(
        "    \"tuples_per_sec\": {:.0},\n",
        bench.tuples_per_sec()
    ));
    s.push_str(&format!("    \"join_probes\": {},\n", bench.join_probes));
    s.push_str(&format!("    \"join_scans\": {},\n", bench.join_scans));
    s.push_str(&format!(
        "    \"index_hit_rate\": {:.4},\n",
        bench.index_hit_rate
    ));
    s.push_str(&format!("    \"peak_tuples\": {},\n", bench.peak_tuples));
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        bench.streams_identical
    ));
    s.push_str("  \"fib_lookup\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", fib.entries));
    s.push_str(&format!("    \"queries\": {},\n", fib.queries));
    s.push_str(&format!("    \"indexed_secs\": {:.6},\n", fib.indexed_secs));
    s.push_str(&format!("    \"naive_secs\": {:.6},\n", fib.naive_secs));
    s.push_str(&format!("    \"speedup\": {:.1},\n", fib.speedup()));
    s.push_str(&format!(
        "    \"indexed_candidates\": {},\n",
        fib.indexed_candidates
    ));
    s.push_str(&format!(
        "    \"naive_candidates\": {},\n",
        fib.naive_candidates
    ));
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        fib.streams_identical
    ));
    s.push_str("  \"parity\": [\n");
    for (i, p) in parity.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"good_vertexes\": {}, \"bad_vertexes\": {}, \"identical\": {}}}{}\n",
            p.name,
            p.good_vertexes,
            p.bad_vertexes,
            p.identical,
            if i + 1 < parity.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-scale end-to-end run of the benchmark plumbing: streams
    /// must agree and the JSON must mention the headline figures.
    #[test]
    fn small_scale_bench_agrees() {
        let b = engine_bench(2_000, 10).expect("bench runs");
        assert!(b.entries >= 2_000);
        assert!(b.streams_identical);
        assert!(b.join_probes > 0);
        let f = fib_bench(2_000, 20).expect("fib bench runs");
        assert!(f.entries >= 2_000);
        assert!(f.streams_identical);
        assert!(
            f.naive_candidates > f.indexed_candidates * 10,
            "naive {} vs indexed {}",
            f.naive_candidates,
            f.indexed_candidates
        );
        let json = to_json(&b, &f, &[]);
        assert!(json.contains("\"streams_identical\": true"));
        assert!(json.contains("\"fib_lookup\""));
        assert!(json.contains("\"entries\""));
    }
}
