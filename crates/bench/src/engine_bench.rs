//! Engine throughput benchmark: hash-indexed vs. naive nested-loop joins
//! and batched vs. tuple-at-a-time rule firing on the §6.7 campus
//! workload, plus cross-mode parity checks on every scenario.
//!
//! The results are written to `BENCH_engine.json` by `repro -- enginebench`
//! so the engine's perf trajectory is machine-readable across revisions.

use std::sync::Arc;

use dp_metrics::Metrics;
use dp_ndlog::{Engine, HashSink, Program, VecSink};
use dp_trace::Tracer;
use dp_replay::{BaseOp, Execution};
use dp_sdn::{campus, CampusConfig};
use dp_types::{FieldType, NodeId, Result, Schema, SchemaRegistry, Tuple};

/// Timing and counters for one indexed-vs-naive comparison run.
#[derive(Clone, Debug)]
pub struct EngineBenchResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// Wall time of the batched indexed replay (seconds) — the default
    /// engine configuration, prefix trie enabled.
    pub indexed_secs: f64,
    /// Wall time of the batched indexed replay on `threads` worker
    /// threads (seconds).
    pub parallel_secs: f64,
    /// Worker threads used by the parallel leg.
    pub threads: usize,
    /// Delta batches the parallel leg fired on the worker pool.
    pub parallel_batches: u64,
    /// Wall time of the indexed replay with tuple-at-a-time firing
    /// (seconds), prefix trie enabled.
    pub unbatched_secs: f64,
    /// Wall time of the batched indexed replay with the prefix trie
    /// disabled (seconds) — the PR 2 baseline, where the `fwd` rule scans
    /// every flow entry per packet.
    pub scan_secs: f64,
    /// Wall time of the trie-disabled, tuple-at-a-time replay (seconds).
    pub unbatched_scan_secs: f64,
    /// Wall time of the naive nested-loop, tuple-at-a-time replay
    /// (seconds).
    pub naive_secs: f64,
    /// Events processed during the replay (identical in all modes).
    pub events: u64,
    /// Join steps answered by an index probe (batched indexed run).
    pub join_probes: u64,
    /// Join steps that fell back to a table scan (batched indexed run).
    pub join_scans: u64,
    /// Join steps answered by a prefix-trie walk (batched indexed run).
    pub trie_probes: u64,
    /// Trie-eligible steps forced to scan in the trie-disabled run.
    pub trie_scans: u64,
    /// Fraction of join steps answered by a probe (batched indexed run).
    pub index_hit_rate: f64,
    /// Delta batches flushed by the batched run.
    pub batches: u64,
    /// Deltas fired through those batches.
    pub batched_deltas: u64,
    /// High-water mark of live tuples across all nodes.
    pub peak_tuples: u64,
    /// High-water mark of *interned* tuples across all shard stores — the
    /// honest memory signal: it counts every distinct allocation the run
    /// held at a quiescent point, including tuples that later died, where
    /// `peak_tuples` only counts tuples currently alive in node states.
    pub peak_interned: u64,
    /// Whether all five runs emitted byte-identical provenance streams.
    pub streams_identical: bool,
}

impl EngineBenchResult {
    /// Naive time over batched indexed time.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.indexed_secs.max(1e-12)
    }

    /// Tuple-at-a-time indexed time over batched indexed time — what
    /// delta batching alone buys on top of indexed joins.
    pub fn batch_speedup(&self) -> f64 {
        self.unbatched_secs / self.indexed_secs.max(1e-12)
    }

    /// Serial batched time over parallel batched time — what the worker
    /// pool buys end-to-end (bounded by the machine's core count; 1.0x on
    /// a single-CPU host).
    pub fn parallel_speedup(&self) -> f64 {
        self.indexed_secs / self.parallel_secs.max(1e-12)
    }

    /// Trie-disabled time over trie-enabled time, batched discipline —
    /// what the prefix-trie access path buys end-to-end.
    pub fn trie_speedup(&self) -> f64 {
        self.scan_secs / self.indexed_secs.max(1e-12)
    }

    /// Trie-disabled time over trie-enabled time, tuple-at-a-time
    /// discipline.
    pub fn unbatched_trie_speedup(&self) -> f64 {
        self.unbatched_scan_secs / self.unbatched_secs.max(1e-12)
    }

    /// Engine throughput of the batched indexed run, in events per second.
    pub fn tuples_per_sec(&self) -> f64 {
        self.events as f64 / self.indexed_secs.max(1e-12)
    }
}

/// Cross-mode agreement on one scenario: vertex counts of the good and
/// bad provenance trees (the Table 1 inputs) and stream equality.
#[derive(Clone, Debug)]
pub struct ScenarioParity {
    /// Scenario name ("SDN1", ..., "MR2-I", "campus").
    pub name: String,
    /// Good-tree vertex count (identical in every mode or the run fails).
    pub good_vertexes: usize,
    /// Bad-tree vertex count.
    pub bad_vertexes: usize,
    /// Whether batched-indexed, unbatched-indexed, and naive replays
    /// emitted identical event streams and identical tree sizes, for both
    /// the good and the bad execution.
    pub identical: bool,
}

/// Replays `exec` into a buffering sink, timing only the evaluation loop.
/// Runs `runs` times and reports the best time (the shared machines the
/// benchmark runs on are noisy; the minimum is the least-perturbed run).
///
/// Timing comes from a per-run private [`Metrics`] registry rather than a
/// bespoke stopwatch: each run's seconds are the `dp_engine_run_seconds`
/// histogram sum, so the BENCH legs are derived from the very same
/// quantity a `/metrics` scrape reports — one producer, no double
/// accounting between the trace aggregate and the registry. The engine's
/// tracer is still pinned to aggregate-only so a `DP_TRACE` full default
/// never makes the benchmark pay event buffering.
fn timed_replay(
    exec: &Execution,
    naive: bool,
    unbatched: bool,
    no_trie: bool,
    threads: usize,
    runs: usize,
) -> Result<(Engine<VecSink>, f64)> {
    let mut best: Option<(Engine<VecSink>, f64)> = None;
    for _ in 0..runs.max(1) {
        let mut eng = Engine::new(Arc::clone(&exec.program), VecSink::default());
        eng.set_naive_join(naive);
        eng.set_unbatched(unbatched);
        eng.set_no_trie(no_trie);
        eng.set_threads(threads);
        eng.set_tracer(Tracer::aggregate_only());
        let metrics = Metrics::enabled();
        eng.set_metrics(metrics.clone());
        exec.log.schedule_into(&mut eng, None)?;
        eng.run()?;
        let secs = run_seconds(&metrics);
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((eng, secs));
        }
    }
    Ok(best.expect("at least one run"))
}

/// The `dp_engine_run_seconds` total of a private per-run registry — the
/// one timing source every BENCH leg reads.
fn run_seconds(metrics: &Metrics) -> f64 {
    metrics
        .snapshot()
        .histogram("dp_engine_run_seconds", &[])
        .map_or(0.0, |h| h.sum_secs())
}

/// Runs the campus workload at benchmark scale in both join modes.
///
/// `bulk_entries_per_router` is chosen so the network holds at least
/// `min_entries` forwarding/ACL entries (the paper's setup has 757 k; the
/// acceptance bar here is 100 k+). Background traffic is kept small so the
/// measurement isolates rule evaluation over large tables rather than
/// packet-count scaling (which is linear and identical in both modes).
pub fn engine_bench(min_entries: usize, background_packets: usize) -> Result<EngineBenchResult> {
    // entries ≈ 16 routers × 15 zones × (1 + bulk); solve for bulk.
    let per_bulk = 16 * 15;
    let bulk = min_entries / per_bulk + 1;
    let cfg = CampusConfig {
        bulk_entries_per_router: bulk,
        background_packets,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    // The serial legs are pinned to one thread so the PR 3 baseline stays
    // comparable across revisions regardless of `DP_THREADS`; the
    // parallel leg runs the same batched indexed configuration on a
    // fixed-size worker pool.
    let threads = 4;
    // One untimed warmup so the first timed leg doesn't pay the cold
    // page-cache / allocator penalty the later legs inherit for free.
    timed_replay(exec, false, false, false, 1, 1)?;
    let (indexed, indexed_secs) = timed_replay(exec, false, false, false, 1, 5)?;
    let (parallel, parallel_secs) = timed_replay(exec, false, false, false, threads, 5)?;
    let (unbatched, unbatched_secs) = timed_replay(exec, false, true, false, 1, 5)?;
    let (scan, scan_secs) = timed_replay(exec, false, false, true, 1, 5)?;
    let (unbatched_scan, unbatched_scan_secs) = timed_replay(exec, false, true, true, 1, 5)?;
    let (naive, naive_secs) = timed_replay(exec, true, true, false, 1, 5)?;
    let streams_identical = indexed.sink().events == unbatched.sink().events
        && indexed.sink().events == parallel.sink().events
        && indexed.sink().events == scan.sink().events
        && indexed.sink().events == unbatched_scan.sink().events
        && indexed.sink().events == naive.sink().events;
    let stats = indexed.stats();
    Ok(EngineBenchResult {
        entries: c.entry_count,
        background_packets,
        indexed_secs,
        parallel_secs,
        threads,
        parallel_batches: parallel.stats().parallel_batches,
        unbatched_secs,
        scan_secs,
        unbatched_scan_secs,
        naive_secs,
        events: stats.events,
        join_probes: stats.join_probes,
        join_scans: stats.join_scans,
        trie_probes: stats.trie_probes,
        trie_scans: scan.stats().trie_scans,
        index_hit_rate: stats.index_hit_rate(),
        batches: stats.batches,
        batched_deltas: stats.batched_deltas,
        peak_tuples: stats.peak_tuples,
        peak_interned: stats.peak_interned,
        streams_identical,
    })
}

/// Result of the provenance-backend benchmark: the campus workload
/// recorded into the full temporal graph vs. the compact annotation
/// store, plus the price of reconstructing proof trees on demand.
#[derive(Clone, Debug)]
pub struct ProvBenchResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// Provenance records held live by the graph backend at quiescence:
    /// every vertex of the temporal graph plus its episode-index entries
    /// and extra-support references. The graph is append-only, so this is
    /// also its peak.
    pub graph_records: u64,
    /// Records held live by the annotation backend: one annotation per
    /// episode plus the body references of report-mode derivations.
    pub annot_records: u64,
    /// Wall time of the replay recording into the graph (seconds).
    pub graph_record_secs: f64,
    /// Wall time of the replay recording into the annotation store
    /// (seconds).
    pub annot_record_secs: f64,
    /// Proof trees sampled for the reconstruction-latency measurement.
    pub trees_sampled: usize,
    /// Mean on-demand reconstruction latency per tree (milliseconds).
    pub reconstruct_avg_ms: f64,
    /// Worst sampled reconstruction latency (milliseconds).
    pub reconstruct_max_ms: f64,
    /// Mean graph-extraction latency over the same trees (milliseconds) —
    /// the price the graph backend pays for the same query.
    pub extract_avg_ms: f64,
    /// Whether every sampled reconstruction rendered byte-identically to
    /// the graph extraction.
    pub trees_match: bool,
}

impl ProvBenchResult {
    /// Graph records over annotation records — how much smaller the
    /// compact backend's live state is (the §6.4 storage argument; the
    /// acceptance bar is ≥5x on the 100 k campus leg).
    pub fn reduction(&self) -> f64 {
        self.graph_records as f64 / (self.annot_records.max(1)) as f64
    }
}

/// The provenance-backend benchmark: one campus replay per backend, then
/// `samples` proof trees reconstructed from annotations and cross-checked
/// against graph extraction, with per-tree latency.
pub fn prov_bench(
    min_entries: usize,
    background_packets: usize,
    samples: usize,
) -> Result<ProvBenchResult> {
    use dp_provenance::{extract_tree, reconstruct_tree, AnnotRecorder, GraphRecorder};
    use dp_types::TupleRef;

    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets,
        // A long-running network updates its state: four rounds of route
        // withdrawal/re-advertisement and traffic turnover. Every cycle
        // costs the graph a DELETE/UNDERIVE + DISAPPEAR and a fresh
        // INSERT/DERIVE + APPEAR + EXIST chain per affected tuple; the
        // annotation store closes the old interval in place and adds one
        // record for the new episode.
        update_churn_rounds: 4,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    let run = |sink_is_graph: bool| -> Result<(Option<dp_provenance::ProvGraph>, Option<dp_provenance::AnnotationStore>, f64)> {
        let metrics = Metrics::enabled();
        if sink_is_graph {
            let mut eng = Engine::new(Arc::clone(&exec.program), GraphRecorder::new());
            eng.set_unbatched(false);
            eng.set_threads(1);
            eng.set_tracer(Tracer::aggregate_only());
            eng.set_metrics(metrics.clone());
            exec.log.schedule_into(&mut eng, None)?;
            eng.run()?;
            let secs = run_seconds(&metrics);
            Ok((Some(eng.into_sink().finish()), None, secs))
        } else {
            let mut eng = Engine::new(
                Arc::clone(&exec.program),
                AnnotRecorder::new(Arc::clone(&exec.program)),
            );
            eng.set_unbatched(false);
            eng.set_threads(1);
            eng.set_tracer(Tracer::aggregate_only());
            eng.set_metrics(metrics.clone());
            exec.log.schedule_into(&mut eng, None)?;
            eng.run()?;
            let secs = run_seconds(&metrics);
            Ok((None, Some(eng.into_sink().finish()), secs))
        }
    };
    let (graph, _, graph_record_secs) = run(true)?;
    let (_, store, annot_record_secs) = run(false)?;
    let graph = graph.expect("graph leg ran");
    let store = store.expect("annot leg ran");

    // Sample query points evenly across every episode of every tuple the
    // graph saw, and time reconstruction against extraction on each.
    let mut points: Vec<(TupleRef, u64)> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut graph_index_records = 0u64;
    for v in graph.vertices() {
        let tref = TupleRef::new(v.node.clone(), Arc::clone(&v.tuple));
        if !seen.insert(tref.clone()) {
            continue;
        }
        for ep in graph.episodes(&tref) {
            graph_index_records += 1 + ep.extra_support.len() as u64;
            points.push((tref.clone(), ep.start));
        }
    }
    let stride = (points.len() / samples.max(1)).max(1);
    let mut recon_total = 0.0f64;
    let mut recon_max = 0.0f64;
    let mut extract_total = 0.0f64;
    let mut sampled = 0usize;
    let mut trees_match = true;
    for (tref, at) in points.iter().step_by(stride).take(samples) {
        let t0 = std::time::Instant::now();
        let got = reconstruct_tree(&store, tref, *at);
        let recon = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let want = extract_tree(&graph, tref, *at);
        extract_total += t1.elapsed().as_secs_f64() * 1e3;
        recon_total += recon;
        recon_max = recon_max.max(recon);
        sampled += 1;
        trees_match &= match (&want, &got) {
            (Some(w), Some(g)) => w.render() == g.render(),
            (None, None) => true,
            _ => false,
        };
    }
    Ok(ProvBenchResult {
        entries: c.entry_count,
        background_packets,
        graph_records: graph.stats().total() + graph_index_records,
        annot_records: store.stats().total(),
        graph_record_secs,
        annot_record_secs,
        trees_sampled: sampled,
        reconstruct_avg_ms: recon_total / sampled.max(1) as f64,
        reconstruct_max_ms: recon_max,
        extract_avg_ms: extract_total / sampled.max(1) as f64,
        trees_match,
    })
}

/// Result of the durable-store benchmark: the campus workload sealed into
/// on-disk layer files with durable checkpoints, then "killed" and
/// recovered from the directory alone. All byte figures are real file
/// sizes, not storage-model estimates.
#[derive(Clone, Debug)]
pub struct DurableBenchResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// Base events sealed into the layer stack.
    pub events: u64,
    /// Immutable layer files written.
    pub layer_files: usize,
    /// Durable checkpoint files written.
    pub checkpoint_files: usize,
    /// Total on-disk bytes of the layer files.
    pub layer_bytes: u64,
    /// Total on-disk bytes of the checkpoint files.
    pub checkpoint_bytes: u64,
    /// Wall time of the spill: the checkpointing reference replay that
    /// seals every layer and writes every checkpoint (seconds).
    pub spill_secs: f64,
    /// Wall time of recovery: reopen the store from disk (checksum-verify
    /// every file), restore the newest checkpoint and replay the on-disk
    /// tail (seconds).
    pub recovery_secs: f64,
    /// Wall time of a checkpoint-free recovery over the same store —
    /// reopen plus a full replay of the whole layer stack (seconds).
    pub cold_replay_secs: f64,
    /// Provenance events past the newest checkpoint — what recovery
    /// actually re-evaluates.
    pub tail_events: u64,
    /// Provenance events in the full stream.
    pub stream_events: u64,
    /// Whether the recovered stream digest is bit-identical to the
    /// crash-free reference run.
    pub digest_match: bool,
}

impl DurableBenchResult {
    /// Real on-disk layer bytes per base event.
    pub fn bytes_per_event(&self) -> f64 {
        self.layer_bytes as f64 / (self.events.max(1)) as f64
    }

    /// Cold full-replay recovery time over checkpointed recovery time —
    /// what the durable checkpoints buy at restart.
    pub fn recovery_speedup(&self) -> f64 {
        self.cold_replay_secs / self.recovery_secs.max(1e-12)
    }
}

/// The durable-store benchmark: spill the campus workload to disk with
/// checkpoints every `checkpoint_every` base events, forget all in-memory
/// state, and time the recovery path against a cold full replay.
pub fn durable_bench(
    min_entries: usize,
    background_packets: usize,
    checkpoint_every: usize,
) -> Result<DurableBenchResult> {
    use dp_replay::DurableStore;

    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    let t0 = std::time::Instant::now();
    let (store, reference) = exec.spill_temp(checkpoint_every)?;
    let spill_secs = t0.elapsed().as_secs_f64();

    let tail_events = store
        .latest_checkpoint()
        .map_or(reference.1, |cp| reference.1 - cp.count);

    // Recovery: reopen from the directory alone (checksums verified on
    // open), restore the newest checkpoint, replay the on-disk tail.
    let t1 = std::time::Instant::now();
    let reopened = DurableStore::open(store.dir())?;
    let recovered = exec.recovered_stream_digest(&reopened)?;
    let recovery_secs = t1.elapsed().as_secs_f64();

    // The checkpoint-free baseline: reopen and replay the whole stack.
    let cold = exec.spill_temp(0)?;
    let t2 = std::time::Instant::now();
    let cold_reopened = DurableStore::open(cold.0.dir())?;
    let cold_digest = exec.recovered_stream_digest(&cold_reopened)?;
    let cold_replay_secs = t2.elapsed().as_secs_f64();

    Ok(DurableBenchResult {
        entries: c.entry_count,
        background_packets,
        events: store.event_count(),
        layer_files: store.layer_count(),
        checkpoint_files: store.checkpoint_count(),
        layer_bytes: store.layer_bytes(),
        checkpoint_bytes: store.checkpoint_bytes(),
        spill_secs,
        recovery_secs,
        cold_replay_secs,
        tail_events,
        stream_events: reference.1,
        digest_match: recovered == reference && cold_digest == cold.1,
    })
}

/// One point on the shard-scaling curve: the campus replay at a fixed
/// shard count.
#[derive(Clone, Debug)]
pub struct ShardScalePoint {
    /// Shard count of this point (1 = the serial reference).
    pub shards: usize,
    /// Wall time of the replay (seconds, best of the runs).
    pub secs: f64,
    /// Events processed (identical at every shard count).
    pub events: u64,
    /// Deltas fired per shard — the load-balance picture of the FNV-1a
    /// node assignment on this workload.
    pub shard_loads: Vec<u64>,
    /// Derived heads that crossed a shard boundary.
    pub cross_shard_msgs: u64,
    /// Batches dispatched through the shard pool.
    pub sharded_batches: u64,
    /// High-water mark of interned tuples summed across shard stores.
    pub peak_interned: u64,
    /// Order-sensitive digest of the provenance stream.
    pub stream_digest: u64,
    /// Events the digest covers.
    pub stream_events: u64,
}

/// The shard-scaling benchmark: one workload replayed at several shard
/// counts, with stream identity checked by digest (buffering millions of
/// events per leg just to compare them would dominate the run).
#[derive(Clone, Debug)]
pub struct ShardBenchResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// One point per requested shard count, in request order.
    pub points: Vec<ShardScalePoint>,
    /// Whether every point produced the same provenance stream digest.
    pub streams_identical: bool,
}

impl ShardBenchResult {
    /// Wall time of the 1-shard point (the serial reference).
    pub fn serial_secs(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.shards == 1)
            .map_or(0.0, |p| p.secs)
    }

    /// Serial time over this point's time. On a single-CPU container the
    /// honest expectation is ~1.0x (parity, i.e. low sharding overhead);
    /// the curve only bends upward with real cores.
    pub fn speedup_at(&self, shards: usize) -> f64 {
        match self.points.iter().find(|p| p.shards == shards) {
            Some(p) => self.serial_secs() / p.secs.max(1e-12),
            None => 0.0,
        }
    }
}

/// Like [`timed_replay`], but over a sharded engine and a digesting sink:
/// the scaling legs run at scales where buffering the stream per leg
/// would dominate memory. Threads are pinned to 1 so shard count is the
/// only variable.
fn timed_replay_sharded(
    exec: &Execution,
    shards: usize,
    runs: usize,
) -> Result<(Engine<HashSink>, f64)> {
    let mut best: Option<(Engine<HashSink>, f64)> = None;
    for _ in 0..runs.max(1) {
        let mut eng = Engine::new(Arc::clone(&exec.program), HashSink::default());
        // Sharding lives in the batched flush, so the curve always
        // measures the batched discipline whatever DP_UNBATCHED says.
        eng.set_unbatched(false);
        eng.set_threads(1);
        eng.set_shards(shards);
        eng.set_tracer(Tracer::aggregate_only());
        let metrics = Metrics::enabled();
        eng.set_metrics(metrics.clone());
        exec.log.schedule_into(&mut eng, None)?;
        eng.run()?;
        let secs = run_seconds(&metrics);
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((eng, secs));
        }
    }
    Ok(best.expect("at least one run"))
}

/// Replays the campus workload at each of `shard_counts` shards and
/// checks that every count digests to the identical provenance stream.
///
/// Doubles as the sustained packet-rate leg (small tables, heavy
/// `background_packets`) and the million-entry leg (heavy tables, light
/// traffic, `runs = 1`): the workload shape is entirely the caller's.
pub fn shard_bench(
    min_entries: usize,
    background_packets: usize,
    shard_counts: &[usize],
    runs: usize,
) -> Result<ShardBenchResult> {
    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;
    let mut points = Vec::new();
    for &shards in shard_counts {
        let (eng, secs) = timed_replay_sharded(exec, shards, runs)?;
        let stats = eng.stats();
        points.push(ShardScalePoint {
            shards,
            secs,
            events: stats.events,
            shard_loads: eng.shard_loads().to_vec(),
            cross_shard_msgs: stats.cross_shard_msgs,
            sharded_batches: stats.sharded_batches,
            peak_interned: stats.peak_interned,
            stream_digest: eng.sink().digest(),
            stream_events: eng.sink().count,
        });
    }
    let streams_identical = points
        .windows(2)
        .all(|w| w[0].stream_digest == w[1].stream_digest && w[0].stream_events == w[1].stream_events);
    Ok(ShardBenchResult {
        entries: c.entry_count,
        background_packets,
        points,
        streams_identical,
    })
}

/// Result of the bulk-load benchmark: the campus configuration push with
/// no traffic, the workload delta batching targets.
#[derive(Clone, Debug)]
pub struct LoadBenchResult {
    /// Forwarding/ACL entries pushed.
    pub entries: usize,
    /// Wall time with delta batching (seconds).
    pub batched_secs: f64,
    /// Wall time with tuple-at-a-time firing (seconds).
    pub streamed_secs: f64,
    /// Join steps run by the batched engine (pruned groups excluded).
    pub batched_steps: u64,
    /// Join steps run by the streaming engine.
    pub streamed_steps: u64,
    /// Whether both runs emitted byte-identical provenance streams.
    pub streams_identical: bool,
}

impl LoadBenchResult {
    /// Streamed time over batched time.
    pub fn batch_speedup(&self) -> f64 {
        self.streamed_secs / self.batched_secs.max(1e-12)
    }
}

/// The firing-discipline benchmark: the campus configuration push (100 k+
/// `cfgEntry` inserts at one timestamp, and the 100 k+ `flowEntry`
/// derivations they trigger) with no packet traffic.
///
/// The end-to-end campus replay is dominated by the `fwd` rule's
/// longest-prefix scans, which cost the same under either discipline, so
/// it bounds the batching gap near 1x. This benchmark isolates the phase
/// batching targets: during the load, every delta's only rule has an
/// empty partner table (the switches' `switchUp`/`pktAt` tables fill
/// later), so the batched flush prunes whole delta groups where the
/// streaming engine attempts a trigger match and a doomed join per tuple.
pub fn load_bench(min_entries: usize) -> Result<LoadBenchResult> {
    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets: 0,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    timed_replay(exec, false, false, false, 1, 1)?; // warmup, untimed
    let (batched, batched_secs) = timed_replay(exec, false, false, false, 1, 5)?;
    let (streamed, streamed_secs) = timed_replay(exec, false, true, false, 1, 5)?;
    Ok(LoadBenchResult {
        entries: c.entry_count,
        batched_secs,
        streamed_secs,
        batched_steps: batched.stats().join_probes + batched.stats().join_scans,
        streamed_steps: streamed.stats().join_probes + streamed.stats().join_scans,
        streams_identical: batched.sink().events == streamed.sink().events,
    })
}

/// Result of the FIB-lookup join benchmark: the equality join the index
/// planner targets, run over the campus forwarding table.
#[derive(Clone, Debug)]
pub struct FibBenchResult {
    /// Forwarding entries in the joined table (taken from the campus log).
    pub entries: usize,
    /// Lookup queries streamed through the join.
    pub queries: usize,
    /// Wall time with hash-indexed joins (seconds).
    pub indexed_secs: f64,
    /// Wall time with naive nested-loop joins (seconds).
    pub naive_secs: f64,
    /// Join candidates examined by the indexed run.
    pub indexed_candidates: u64,
    /// Join candidates examined by the naive run.
    pub naive_candidates: u64,
    /// Whether both runs emitted byte-identical provenance streams.
    pub streams_identical: bool,
}

impl FibBenchResult {
    /// Naive time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.indexed_secs.max(1e-12)
    }
}

/// The join-bound benchmark: FIB lookups against the campus forwarding
/// table.
///
/// The campus end-to-end replay is dominated by per-event costs and by the
/// `fwd` rule's longest-prefix matching, which is constraint-bound (no
/// column of `flowEntry` is equality-bound by a packet), so it bounds the
/// campus wall-clock gap at the `install` rule's share. This benchmark
/// isolates the access path the planner actually optimizes: an equality
/// join `fib(@C, Rid, Pt) :- query(@C, Sw, Dst), cfgEntry(@C, Rid, Sw,
/// Prio, SM, Dst, Pt)` keyed on (switch, destination prefix), over the
/// *real* campus `cfgEntry` tuples. Naive evaluation scans all `entries`
/// rows per lookup — quadratic; the planner probes one hash bucket.
pub fn fib_bench(min_entries: usize, queries: usize) -> Result<FibBenchResult> {
    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets: 0,
        ..Default::default()
    };
    let c = campus(&cfg);

    let mut reg = SchemaRegistry::new();
    use dp_types::TableKind::*;
    reg.declare(
        Schema::new(
            "cfgEntry",
            MutableBase,
            [
                ("rid", FieldType::Int),
                ("sw", FieldType::Str),
                ("prio", FieldType::Int),
                ("srcMatch", FieldType::Prefix),
                ("dstMatch", FieldType::Prefix),
                ("port", FieldType::Int),
            ],
        )
        .with_key([0]),
    );
    reg.declare(Schema::new(
        "query",
        ImmutableBase,
        [("sw", FieldType::Str), ("dst", FieldType::Prefix)],
    ));
    reg.declare(Schema::new(
        "fib",
        Derived,
        [("rid", FieldType::Int), ("port", FieldType::Int)],
    ));
    let program: Arc<Program> = Program::builder(reg)
        .rules_text(
            "lkup fib(@C, Rid, Pt) :- query(@C, Sw, Dst), \
             cfgEntry(@C, Rid, Sw, Prio, SM, Dst, Pt).",
        )?
        .build()?;

    // The real campus forwarding state, straight from the scenario log.
    let ctl = NodeId::new("ctl");
    let entries: Vec<Tuple> = c
        .scenario
        .bad_exec
        .log
        .events()
        .iter()
        .filter(|e| e.op == BaseOp::Insert && e.tuple.table.as_str() == "cfgEntry")
        .map(|e| e.tuple.clone())
        .collect();
    let mut exec = Execution::new(program);
    for (i, t) in entries.iter().enumerate() {
        exec.log.insert(10 + i as u64, ctl.clone(), t.clone());
    }
    // Lookups spread deterministically across the table: every query keys
    // on an existing (switch, dstMatch) pair, so each probe hits.
    let stride = (entries.len() / queries.max(1)).max(1);
    let base = 10 + entries.len() as u64;
    for (qi, t) in entries.iter().step_by(stride).take(queries).enumerate() {
        exec.log.insert(
            base + qi as u64,
            ctl.clone(),
            Tuple::new("query", vec![t.args[1].clone(), t.args[4].clone()]),
        );
    }

    let (indexed, indexed_secs) = timed_replay(&exec, false, false, false, 1, 3)?;
    let (naive, naive_secs) = timed_replay(&exec, true, false, false, 1, 3)?;
    Ok(FibBenchResult {
        entries: entries.len(),
        queries,
        indexed_secs,
        naive_secs,
        indexed_candidates: indexed.stats().join_candidates,
        naive_candidates: naive.stats().join_candidates,
        streams_identical: indexed.sink().events == naive.sink().events,
    })
}

/// Replays one execution in six engine configurations — batched indexed
/// (the default, trie on), the same on a 4-thread worker pool,
/// tuple-at-a-time indexed, both serial configurations with the prefix
/// trie disabled, and tuple-at-a-time naive — and checks stream equality
/// across the lot.
fn exec_parity(exec: &Execution) -> Result<bool> {
    let (indexed, _) = timed_replay(exec, false, false, false, 1, 1)?;
    let (parallel, _) = timed_replay(exec, false, false, false, 4, 1)?;
    let (unbatched, _) = timed_replay(exec, false, true, false, 1, 1)?;
    let (scan, _) = timed_replay(exec, false, false, true, 1, 1)?;
    let (unbatched_scan, _) = timed_replay(exec, false, true, true, 1, 1)?;
    let (naive, _) = timed_replay(exec, true, true, false, 1, 1)?;
    Ok(indexed.sink().events == parallel.sink().events
        && indexed.sink().events == unbatched.sink().events
        && indexed.sink().events == scan.sink().events
        && indexed.sink().events == unbatched_scan.sink().events
        && indexed.sink().events == naive.sink().events)
}

/// Tree vertex count for an event, replayed with the given join mode and
/// firing discipline.
fn tree_len(
    exec: &Execution,
    event: &diffprov_core::QueryEvent,
    naive: bool,
    unbatched: bool,
    no_trie: bool,
) -> Result<Option<usize>> {
    let mut exec = exec.clone();
    exec.naive_join = naive;
    exec.unbatched = unbatched;
    exec.no_trie = no_trie;
    let replayed = exec.replay()?;
    Ok(replayed.query_at(&event.tref, event.at).map(|t| t.len()))
}

/// Checks every scenario (the 8 Table 1 queries plus the campus network)
/// for agreement across join modes and firing disciplines.
pub fn scenario_parity() -> Result<Vec<ScenarioParity>> {
    let mut scenarios: Vec<diffprov_core::Scenario> = dp_sdn::all_sdn_scenarios();
    scenarios.extend(dp_mapreduce::all_mr_scenarios());
    scenarios.push(campus(&CampusConfig::default()).scenario);
    let mut out = Vec::new();
    for s in &scenarios {
        let good_i = tree_len(&s.good_exec, &s.good_event, false, false, false)?;
        let good_n = tree_len(&s.good_exec, &s.good_event, true, true, false)?;
        let good_u = tree_len(&s.good_exec, &s.good_event, false, true, false)?;
        let good_s = tree_len(&s.good_exec, &s.good_event, false, false, true)?;
        let bad_i = tree_len(&s.bad_exec, &s.bad_event, false, false, false)?;
        let bad_n = tree_len(&s.bad_exec, &s.bad_event, true, true, false)?;
        let bad_u = tree_len(&s.bad_exec, &s.bad_event, false, true, false)?;
        let bad_s = tree_len(&s.bad_exec, &s.bad_event, false, false, true)?;
        let identical = good_i == good_n
            && good_i == good_u
            && good_i == good_s
            && bad_i == bad_n
            && bad_i == bad_u
            && bad_i == bad_s
            && exec_parity(&s.good_exec)?
            && exec_parity(&s.bad_exec)?;
        out.push(ScenarioParity {
            name: s.name.to_string(),
            good_vertexes: good_i.unwrap_or(0),
            bad_vertexes: bad_i.unwrap_or(0),
            identical,
        });
    }
    Ok(out)
}

/// Renders one shard-scaling result as a named JSON section, appended to
/// `s` with a trailing comma.
fn shard_section(s: &mut String, key: &str, r: &ShardBenchResult) {
    s.push_str(&format!("  \"{key}\": {{\n"));
    s.push_str(&format!("    \"entries\": {},\n", r.entries));
    s.push_str(&format!(
        "    \"background_packets\": {},\n",
        r.background_packets
    ));
    s.push_str("    \"points\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        let loads: Vec<String> = p.shard_loads.iter().map(|l| l.to_string()).collect();
        s.push_str(&format!(
            "      {{\"shards\": {}, \"secs\": {:.6}, \"events\": {}, \
             \"tuples_per_sec\": {:.0}, \"shard_loads\": [{}], \
             \"cross_shard_msgs\": {}, \"sharded_batches\": {}, \
             \"peak_interned\": {}, \"speedup\": {:.2}}}{}\n",
            p.shards,
            p.secs,
            p.events,
            p.events as f64 / p.secs.max(1e-12),
            loads.join(", "),
            p.cross_shard_msgs,
            p.sharded_batches,
            p.peak_interned,
            r.speedup_at(p.shards),
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        r.streams_identical
    ));
}

/// Enabled-vs-disabled cost of the metrics subsystem on a campus replay.
///
/// Both legs run the identical workload and are timed with the same
/// stopwatch (wall clock around the evaluation loop, best of `runs`), so
/// the ratio isolates the cost of live metric updates: counter/histogram
/// atomics per batch, the per-insert flow sketch, and the quiescence
/// interner sweep. The disabled leg carries an explicitly disabled
/// handle — one `Option` branch per would-be update, the provably-cheap
/// fast path.
#[derive(Clone, Debug)]
pub struct MetricsOverheadResult {
    /// Configured forwarding/ACL entries in the campus network.
    pub entries: usize,
    /// Background packets streamed through the network.
    pub background_packets: usize,
    /// Timed repetitions per leg (best time reported).
    pub runs: usize,
    /// Best replay seconds with metrics disabled.
    pub disabled_secs: f64,
    /// Best replay seconds with a live private registry attached.
    pub enabled_secs: f64,
    /// Metric families the enabled replay registered.
    pub metric_families: usize,
    /// Approximate distinct flows the enabled replay sketched.
    pub distinct_flows: u64,
    /// Whether both legs digested the identical provenance stream —
    /// metrics must be a strictly passive observer.
    pub streams_identical: bool,
}

impl MetricsOverheadResult {
    /// Enabled-over-disabled time ratio (1.0 = free).
    pub fn overhead_ratio(&self) -> f64 {
        self.enabled_secs / self.disabled_secs.max(1e-12)
    }
}

/// Measures the cost of enabling metrics on the campus workload: one leg
/// with an explicitly disabled handle, one with a fresh live registry per
/// run, both digesting their streams so passivity is checked, not assumed.
pub fn metrics_overhead_bench(
    min_entries: usize,
    background_packets: usize,
    runs: usize,
) -> Result<MetricsOverheadResult> {
    let per_bulk = 16 * 15;
    let cfg = CampusConfig {
        bulk_entries_per_router: min_entries / per_bulk + 1,
        background_packets,
        ..Default::default()
    };
    let c = campus(&cfg);
    let exec = &c.scenario.bad_exec;

    let leg = |metrics: &dyn Fn() -> Metrics| -> Result<(f64, u64, Metrics)> {
        let mut best = f64::INFINITY;
        let mut digest = 0u64;
        let mut last = Metrics::disabled();
        for _ in 0..runs.max(1) {
            let mut eng = Engine::new(Arc::clone(&exec.program), HashSink::default());
            eng.set_unbatched(false);
            eng.set_threads(1);
            eng.set_tracer(Tracer::aggregate_only());
            let m = metrics();
            eng.set_metrics(m.clone());
            exec.log.schedule_into(&mut eng, None)?;
            let t0 = std::time::Instant::now();
            eng.run()?;
            let secs = t0.elapsed().as_secs_f64();
            digest = eng.sink().digest();
            if secs < best {
                best = secs;
            }
            last = m;
        }
        Ok((best, digest, last))
    };

    // Warmup, untimed, so the first leg doesn't pay the cold caches.
    leg(&Metrics::disabled)?;
    let (disabled_secs, disabled_digest, _) = leg(&Metrics::disabled)?;
    let (enabled_secs, enabled_digest, m) = leg(&Metrics::enabled)?;
    let snap = m.snapshot();
    Ok(MetricsOverheadResult {
        entries: c.entry_count,
        background_packets,
        runs: runs.max(1),
        disabled_secs,
        enabled_secs,
        metric_families: snap.families.len(),
        distinct_flows: snap.hll_estimate("dp_engine_distinct_flows", &[]).round() as u64,
        streams_identical: disabled_digest == enabled_digest,
    })
}

/// Renders the benchmark results as a JSON document (hand-rolled; the
/// workspace builds offline, without serde).
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    bench: &EngineBenchResult,
    load: &LoadBenchResult,
    fib: &FibBenchResult,
    shard: &ShardBenchResult,
    rate: &ShardBenchResult,
    million: Option<&ShardBenchResult>,
    prov: Option<&ProvBenchResult>,
    durable: Option<&DurableBenchResult>,
    overhead: Option<&MetricsOverheadResult>,
    parity: &[ScenarioParity],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"ndlog-engine\",\n  \"campus\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", bench.entries));
    s.push_str(&format!(
        "    \"background_packets\": {},\n",
        bench.background_packets
    ));
    s.push_str(&format!("    \"indexed_secs\": {:.6},\n", bench.indexed_secs));
    s.push_str(&format!(
        "    \"parallel_secs\": {:.6},\n",
        bench.parallel_secs
    ));
    s.push_str(&format!("    \"threads\": {},\n", bench.threads));
    s.push_str(&format!(
        "    \"parallel_batches\": {},\n",
        bench.parallel_batches
    ));
    s.push_str(&format!(
        "    \"parallel_speedup\": {:.2},\n",
        bench.parallel_speedup()
    ));
    s.push_str(&format!(
        "    \"unbatched_secs\": {:.6},\n",
        bench.unbatched_secs
    ));
    s.push_str(&format!("    \"scan_secs\": {:.6},\n", bench.scan_secs));
    s.push_str(&format!(
        "    \"unbatched_scan_secs\": {:.6},\n",
        bench.unbatched_scan_secs
    ));
    s.push_str(&format!("    \"naive_secs\": {:.6},\n", bench.naive_secs));
    s.push_str(&format!("    \"speedup\": {:.2},\n", bench.speedup()));
    s.push_str(&format!(
        "    \"trie_speedup\": {:.2},\n",
        bench.trie_speedup()
    ));
    s.push_str(&format!(
        "    \"unbatched_trie_speedup\": {:.2},\n",
        bench.unbatched_trie_speedup()
    ));
    s.push_str(&format!(
        "    \"batch_speedup\": {:.2},\n",
        bench.batch_speedup()
    ));
    s.push_str(&format!("    \"batches\": {},\n", bench.batches));
    s.push_str(&format!(
        "    \"batched_deltas\": {},\n",
        bench.batched_deltas
    ));
    s.push_str(&format!("    \"events\": {},\n", bench.events));
    s.push_str(&format!(
        "    \"tuples_per_sec\": {:.0},\n",
        bench.tuples_per_sec()
    ));
    s.push_str(&format!("    \"join_probes\": {},\n", bench.join_probes));
    s.push_str(&format!("    \"join_scans\": {},\n", bench.join_scans));
    s.push_str(&format!("    \"trie_probes\": {},\n", bench.trie_probes));
    s.push_str(&format!("    \"trie_scans\": {},\n", bench.trie_scans));
    s.push_str(&format!(
        "    \"index_hit_rate\": {:.4},\n",
        bench.index_hit_rate
    ));
    s.push_str(&format!("    \"peak_tuples\": {},\n", bench.peak_tuples));
    s.push_str(&format!(
        "    \"peak_interned\": {},\n",
        bench.peak_interned
    ));
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        bench.streams_identical
    ));
    s.push_str("  \"bulk_load\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", load.entries));
    s.push_str(&format!("    \"batched_secs\": {:.6},\n", load.batched_secs));
    s.push_str(&format!(
        "    \"streamed_secs\": {:.6},\n",
        load.streamed_secs
    ));
    s.push_str(&format!(
        "    \"batch_speedup\": {:.2},\n",
        load.batch_speedup()
    ));
    s.push_str(&format!("    \"batched_steps\": {},\n", load.batched_steps));
    s.push_str(&format!(
        "    \"streamed_steps\": {},\n",
        load.streamed_steps
    ));
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        load.streams_identical
    ));
    s.push_str("  \"fib_lookup\": {\n");
    s.push_str(&format!("    \"entries\": {},\n", fib.entries));
    s.push_str(&format!("    \"queries\": {},\n", fib.queries));
    s.push_str(&format!("    \"indexed_secs\": {:.6},\n", fib.indexed_secs));
    s.push_str(&format!("    \"naive_secs\": {:.6},\n", fib.naive_secs));
    s.push_str(&format!("    \"speedup\": {:.1},\n", fib.speedup()));
    s.push_str(&format!(
        "    \"indexed_candidates\": {},\n",
        fib.indexed_candidates
    ));
    s.push_str(&format!(
        "    \"naive_candidates\": {},\n",
        fib.naive_candidates
    ));
    s.push_str(&format!(
        "    \"streams_identical\": {}\n  }},\n",
        fib.streams_identical
    ));
    shard_section(&mut s, "shard_scaling", shard);
    shard_section(&mut s, "packet_rate", rate);
    if let Some(m) = million {
        shard_section(&mut s, "million_entry", m);
    }
    if let Some(p) = prov {
        s.push_str("  \"provenance_backend\": {\n");
        s.push_str(&format!("    \"entries\": {},\n", p.entries));
        s.push_str(&format!(
            "    \"background_packets\": {},\n",
            p.background_packets
        ));
        s.push_str(&format!("    \"graph_records\": {},\n", p.graph_records));
        s.push_str(&format!("    \"annot_records\": {},\n", p.annot_records));
        s.push_str(&format!("    \"reduction\": {:.2},\n", p.reduction()));
        s.push_str(&format!(
            "    \"graph_record_secs\": {:.6},\n",
            p.graph_record_secs
        ));
        s.push_str(&format!(
            "    \"annot_record_secs\": {:.6},\n",
            p.annot_record_secs
        ));
        s.push_str(&format!("    \"trees_sampled\": {},\n", p.trees_sampled));
        s.push_str(&format!(
            "    \"reconstruct_avg_ms\": {:.4},\n",
            p.reconstruct_avg_ms
        ));
        s.push_str(&format!(
            "    \"reconstruct_max_ms\": {:.4},\n",
            p.reconstruct_max_ms
        ));
        s.push_str(&format!(
            "    \"extract_avg_ms\": {:.4},\n",
            p.extract_avg_ms
        ));
        s.push_str(&format!("    \"trees_match\": {}\n  }},\n", p.trees_match));
    }
    if let Some(d) = durable {
        s.push_str("  \"durable_store\": {\n");
        s.push_str(&format!("    \"entries\": {},\n", d.entries));
        s.push_str(&format!(
            "    \"background_packets\": {},\n",
            d.background_packets
        ));
        s.push_str(&format!("    \"events\": {},\n", d.events));
        s.push_str(&format!("    \"layer_files\": {},\n", d.layer_files));
        s.push_str(&format!(
            "    \"checkpoint_files\": {},\n",
            d.checkpoint_files
        ));
        s.push_str(&format!("    \"layer_bytes\": {},\n", d.layer_bytes));
        s.push_str(&format!(
            "    \"checkpoint_bytes\": {},\n",
            d.checkpoint_bytes
        ));
        s.push_str(&format!(
            "    \"bytes_per_event\": {:.2},\n",
            d.bytes_per_event()
        ));
        s.push_str(&format!("    \"spill_secs\": {:.6},\n", d.spill_secs));
        s.push_str(&format!(
            "    \"recovery_secs\": {:.6},\n",
            d.recovery_secs
        ));
        s.push_str(&format!(
            "    \"cold_replay_secs\": {:.6},\n",
            d.cold_replay_secs
        ));
        s.push_str(&format!(
            "    \"recovery_speedup\": {:.2},\n",
            d.recovery_speedup()
        ));
        s.push_str(&format!("    \"tail_events\": {},\n", d.tail_events));
        s.push_str(&format!("    \"stream_events\": {},\n", d.stream_events));
        s.push_str(&format!(
            "    \"digest_match\": {}\n  }},\n",
            d.digest_match
        ));
    }
    if let Some(o) = overhead {
        s.push_str("  \"metrics_overhead\": {\n");
        s.push_str(&format!("    \"entries\": {},\n", o.entries));
        s.push_str(&format!(
            "    \"background_packets\": {},\n",
            o.background_packets
        ));
        s.push_str(&format!("    \"runs\": {},\n", o.runs));
        s.push_str(&format!(
            "    \"disabled_secs\": {:.6},\n",
            o.disabled_secs
        ));
        s.push_str(&format!("    \"enabled_secs\": {:.6},\n", o.enabled_secs));
        s.push_str(&format!(
            "    \"overhead_ratio\": {:.4},\n",
            o.overhead_ratio()
        ));
        s.push_str(&format!(
            "    \"metric_families\": {},\n",
            o.metric_families
        ));
        s.push_str(&format!(
            "    \"distinct_flows\": {},\n",
            o.distinct_flows
        ));
        s.push_str(&format!(
            "    \"streams_identical\": {}\n  }},\n",
            o.streams_identical
        ));
    }
    s.push_str("  \"parity\": [\n");
    for (i, p) in parity.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"good_vertexes\": {}, \"bad_vertexes\": {}, \"identical\": {}}}{}\n",
            p.name,
            p.good_vertexes,
            p.bad_vertexes,
            p.identical,
            if i + 1 < parity.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-scale end-to-end run of the benchmark plumbing: streams
    /// must agree and the JSON must mention the headline figures.
    #[test]
    fn small_scale_bench_agrees() {
        let b = engine_bench(2_000, 10).expect("bench runs");
        assert!(b.entries >= 2_000);
        assert!(b.streams_identical);
        assert!(b.join_probes > 0);
        assert!(b.trie_probes > 0, "the fwd rule must probe the trie");
        assert!(b.trie_scans > 0, "the scan leg must fall back");
        assert!(b.batches > 0, "the default run must batch");
        assert!(b.batched_deltas >= b.batches);
        assert!(
            b.parallel_batches > 0,
            "the parallel leg must reach the worker pool"
        );
        let f = fib_bench(2_000, 20).expect("fib bench runs");
        assert!(f.entries >= 2_000);
        assert!(f.streams_identical);
        assert!(
            f.naive_candidates > f.indexed_candidates * 10,
            "naive {} vs indexed {}",
            f.naive_candidates,
            f.indexed_candidates
        );
        let l = load_bench(2_000).expect("load bench runs");
        assert!(l.entries >= 2_000);
        assert!(l.streams_identical);
        assert!(
            l.batched_steps < l.streamed_steps,
            "pruning must cut join steps: batched {} vs streamed {}",
            l.batched_steps,
            l.streamed_steps
        );
        let s = shard_bench(2_000, 10, &[1, 2, 4], 1).expect("shard bench runs");
        assert_eq!(s.points.len(), 3);
        assert!(
            s.streams_identical,
            "shard counts must digest identical streams"
        );
        for p in &s.points {
            assert_eq!(p.shard_loads.len(), p.shards);
            assert_eq!(p.events, s.points[0].events);
            assert!(p.peak_interned > 0, "peak_interned must be accounted");
            if p.shards > 1 {
                assert!(p.sharded_batches > 0, "{} shards never dispatched", p.shards);
                assert!(
                    p.shard_loads.iter().filter(|&&l| l > 0).count() > 1,
                    "campus nodes all hashed onto one of {} shards",
                    p.shards
                );
            } else {
                assert_eq!(p.cross_shard_msgs, 0);
            }
        }
        let p = prov_bench(2_000, 10, 50).expect("prov bench runs");
        assert!(p.trees_sampled > 0);
        assert!(p.trees_match, "sampled reconstructions diverge");
        assert!(
            p.reduction() >= 5.0,
            "annotation store only {:.1}x smaller ({} vs {})",
            p.reduction(),
            p.graph_records,
            p.annot_records
        );
        let d = durable_bench(2_000, 10, 512).expect("durable bench runs");
        assert!(d.events > 0);
        assert!(d.layer_files > 0, "spill must seal layer files");
        assert!(d.checkpoint_files > 0, "spill must write checkpoints");
        assert!(d.layer_bytes > 0 && d.checkpoint_bytes > 0);
        assert!(d.digest_match, "recovery digest diverged from reference");
        assert!(
            d.tail_events < d.stream_events,
            "the newest checkpoint must cover a non-trivial prefix"
        );
        let o = metrics_overhead_bench(2_000, 10, 1).expect("overhead bench runs");
        assert!(
            o.streams_identical,
            "metrics perturbed the provenance stream"
        );
        assert!(o.metric_families > 0, "enabled leg registered nothing");
        assert!(o.distinct_flows > 0, "flow sketch saw no flows");
        let json = to_json(&b, &l, &f, &s, &s, Some(&s), Some(&p), Some(&d), Some(&o), &[]);
        assert!(json.contains("\"metrics_overhead\""));
        assert!(json.contains("\"overhead_ratio\""));
        assert!(json.contains("\"durable_store\""));
        assert!(json.contains("\"recovery_secs\""));
        assert!(json.contains("\"digest_match\": true"));
        assert!(json.contains("\"provenance_backend\""));
        assert!(json.contains("\"reconstruct_avg_ms\""));
        assert!(json.contains("\"reduction\""));
        assert!(json.contains("\"streams_identical\": true"));
        assert!(json.contains("\"fib_lookup\""));
        assert!(json.contains("\"entries\""));
        assert!(json.contains("\"unbatched_secs\""));
        assert!(json.contains("\"parallel_secs\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(json.contains("\"batch_speedup\""));
        assert!(json.contains("\"trie_speedup\""));
        assert!(json.contains("\"trie_probes\""));
        assert!(json.contains("\"peak_interned\""));
        assert!(json.contains("\"shard_scaling\""));
        assert!(json.contains("\"packet_rate\""));
        assert!(json.contains("\"million_entry\""));
        assert!(json.contains("\"shard_loads\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
