//! Section 6.7: diagnostics in a complex network with realistic policies,
//! multiple concurrent faults, and heavy background traffic.

use std::time::{Duration, Instant};

use dp_provenance::plain_tree_diff;
use dp_sdn::{campus, CampusConfig};
use dp_types::Result;

/// Results of the campus-network experiment.
#[derive(Clone, Debug)]
pub struct ComplexResult {
    /// Configured forwarding/ACL entries in the network.
    pub entries: usize,
    /// Extra injected faults (on-path + off-path noise).
    pub extra_faults: usize,
    /// Background packets streamed.
    pub background_packets: usize,
    /// Good-tree vertex count (paper: 75).
    pub good_tree: usize,
    /// Bad-tree vertex count (paper: 67).
    pub bad_tree: usize,
    /// Plain-diff vertex count (paper: 108).
    pub plain_diff: usize,
    /// DiffProv's change-set size.
    pub delta: usize,
    /// Whether the misconfigured drop entry (rule id 2 on oz4) was named.
    pub names_root_cause: bool,
    /// Whether the alignment verified.
    pub verified: bool,
    /// Query turnaround.
    pub elapsed: Duration,
}

/// Runs the experiment at the given noise scale.
pub fn complex(cfg: &CampusConfig) -> Result<ComplexResult> {
    let campus = campus(cfg);
    let s = &campus.scenario;
    let t = Instant::now();
    let report = s.diagnose()?;
    let elapsed = t.elapsed();
    if let Some(f) = &report.failure {
        return Err(dp_types::Error::Engine(format!("campus diagnosis failed: {f}")));
    }
    // Baseline tree sizes and the strawman diff.
    let rg = s.good_exec.replay()?;
    let good_tree = rg
        .query_at(&s.good_event.tref, s.good_event.at)
        .ok_or_else(|| dp_types::Error::Engine("good event missing".into()))?;
    let rb = s.bad_exec.replay()?;
    let bad_tree = rb
        .query_at(&s.bad_event.tref, s.bad_event.at)
        .ok_or_else(|| dp_types::Error::Engine("bad event missing".into()))?;
    let diff = plain_tree_diff(&good_tree, &bad_tree);
    let names_root_cause = report.delta.iter().any(|c| {
        c.before
            .as_ref()
            .map(|b| b.args.first() == Some(&dp_types::Value::Int(2)))
            == Some(true)
    });
    Ok(ComplexResult {
        entries: campus.entry_count,
        extra_faults: cfg.faults_on_path + cfg.faults_off_path,
        background_packets: cfg.background_packets,
        good_tree: good_tree.len(),
        bad_tree: bad_tree.len(),
        plain_diff: diff.len(),
        delta: report.delta.len(),
        names_root_cause,
        verified: report.verified,
        elapsed,
    })
}
