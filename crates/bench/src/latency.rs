//! Section 6.4: the runtime latency overhead of provenance logging.
//!
//! Measured as in the paper: the same workload with capture enabled
//! (provenance recorder attached) vs. disabled (a null sink), plus the
//! MapReduce checksum experiment — computing input-file checksums on every
//! read vs. caching them at file creation, the optimization the paper
//! reports cutting its MapReduce overhead from 2.3% to 0.2%.

use std::sync::Arc;
use std::time::Instant;

use dp_mapreduce::{build_job, generate as gen_corpus, CorpusConfig, JobConfig, Pipeline};
use dp_ndlog::expr::fnv1a;
use dp_ndlog::{Engine, ProvEvent, ProvenanceSink};
use dp_replay::{Execution, StorageModel};
use dp_sdn::{generate as gen_trace, sdn_program, TraceConfig, Topology};
use dp_types::{NodeId, Result};

/// The *runtime* logging engine: the paper's query-time approach writes
/// only base events to the log at runtime (Section 5) — graph construction
/// is deferred to replay. This sink encodes base events the way the
/// logging engine would serialize them, and discards derivations.
struct RuntimeLogSink {
    model: StorageModel,
    buffer: Vec<u8>,
}

impl RuntimeLogSink {
    fn new() -> Self {
        RuntimeLogSink {
            model: StorageModel::default(),
            buffer: Vec::new(),
        }
    }
}

impl ProvenanceSink for RuntimeLogSink {
    fn record(&mut self, event: ProvEvent) {
        let (time, tuple) = match &event {
            ProvEvent::InsertBase { time, tuple, .. }
            | ProvEvent::DeleteBase { time, tuple, .. } => (*time, tuple),
            _ => return, // derivations are reconstructed at query time
        };
        self.buffer.extend_from_slice(&time.to_le_bytes());
        self.buffer.push(tuple.table.as_str().len() as u8);
        for v in &tuple.args {
            // Emulate the fixed-size binary record encoding.
            let n = self.model.value_bytes(v);
            self.buffer.extend(std::iter::repeat_n(0u8, n));
        }
    }
}

/// Replays an execution with the runtime logging engine attached,
/// returning the logged byte count.
fn replay_logged(exec: &Execution) -> Result<usize> {
    let mut engine = Engine::new(Arc::clone(&exec.program), RuntimeLogSink::new());
    exec.log.schedule_into(&mut engine, None)?;
    engine.run()?;
    Ok(engine.into_sink().buffer.len())
}

/// One latency measurement.
#[derive(Clone, Debug)]
pub struct Overhead {
    /// The workload label.
    pub workload: String,
    /// Seconds without provenance capture.
    pub baseline_secs: f64,
    /// Seconds with capture enabled.
    pub with_capture_secs: f64,
}

impl Overhead {
    /// Relative overhead (e.g. 0.067 = 6.7%).
    pub fn relative(&self) -> f64 {
        (self.with_capture_secs - self.baseline_secs) / self.baseline_secs
    }
}

fn best_of<F: FnMut() -> Result<()>>(runs: usize, mut f: F) -> Result<f64> {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        f()?;
        best = best.min(t.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// SDN packet-processing overhead: a trace streamed through a two-switch
/// pipeline, with and without the graph recorder.
pub fn sdn_overhead(packets: usize, runs: usize) -> Result<Overhead> {
    let mut topo = Topology::new("ctl");
    topo.switches(&["S1", "S2"]);
    topo.link("S1", "S2");
    let p_host = topo.host("S2", "sink");
    let program = sdn_program("ctl")?;
    let mut exec = Execution::new(Arc::clone(&program));
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = dp_types::prefix::cidr("0.0.0.0/0");
    exec.log.insert(
        10,
        ctl.clone(),
        dp_sdn::cfg_entry(1, "S1", 1, any, any, topo.port_towards("S1", "S2")),
    );
    exec.log
        .insert(10, ctl, dp_sdn::cfg_entry(2, "S2", 1, any, any, p_host));
    let trace = gen_trace(&TraceConfig {
        packets,
        ..Default::default()
    });
    for (i, p) in trace.packets.into_iter().enumerate() {
        exec.log.insert(100 + i as u64, "S1", p);
    }
    let baseline = best_of(runs, || exec.replay_null().map(|_| ()))?;
    let with_capture = best_of(runs, || replay_logged(&exec).map(|_| ()))?;
    Ok(Overhead {
        workload: format!("SDN ({packets} packets)"),
        baseline_secs: baseline,
        with_capture_secs: with_capture,
    })
}

/// MapReduce job overhead: the WordCount job with and without the
/// recorder.
pub fn mr_overhead(lines_per_file: usize, runs: usize) -> Result<Overhead> {
    let corpus = gen_corpus(&CorpusConfig {
        files: 2,
        lines_per_file,
        ..Default::default()
    });
    let exec = build_job(
        &JobConfig {
            pipeline: Pipeline::Imperative,
            ..Default::default()
        },
        &corpus,
    );
    let baseline = best_of(runs, || exec.replay_null().map(|_| ()))?;
    let with_capture = best_of(runs, || replay_logged(&exec).map(|_| ()))?;
    Ok(Overhead {
        workload: format!("MapReduce ({} lines)", lines_per_file * 2),
        baseline_secs: baseline,
        with_capture_secs: with_capture,
    })
}

/// The checksum experiment of Section 6.4: the dominating MapReduce
/// logging cost was checksumming HDFS files on every read; computing the
/// checksum only at file creation removes it.
#[derive(Clone, Debug)]
pub struct ChecksumCosts {
    /// Seconds spent checksumming when every read re-hashes its file.
    pub per_read_secs: f64,
    /// Seconds when checksums are computed once per file and cached.
    pub cached_secs: f64,
    /// Number of reads simulated.
    pub reads: usize,
}

/// Measures both strategies over a generated corpus.
pub fn checksum_costs(lines_per_file: usize) -> ChecksumCosts {
    let corpus = gen_corpus(&CorpusConfig {
        files: 2,
        lines_per_file,
        ..Default::default()
    });
    let contents: Vec<String> = corpus.iter().map(|f| f.lines.join("\n")).collect();
    let reads: usize = corpus.iter().map(|f| f.lines.len()).sum();

    let t = Instant::now();
    let mut acc = 0u64;
    for f in &corpus {
        for _ in &f.lines {
            // Naive: every record read re-checksums its whole file.
            let idx = corpus.iter().position(|g| g.name == f.name).unwrap();
            acc ^= fnv1a(contents[idx].as_bytes());
        }
    }
    let per_read_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let t = Instant::now();
    let mut acc = 0u64;
    for c in &contents {
        acc ^= fnv1a(c.as_bytes());
    }
    let cached_secs = t.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);

    ChecksumCosts {
        per_read_secs,
        cached_secs,
        reads,
    }
}
