//! `repro -- metrics <scenario>` / `repro -- serve-metrics <scenario>` /
//! `repro -- metrics-smoke`: the command-line surfaces of the dp-metrics
//! registry.
//!
//! * `metrics <scenario>` replays both executions of the scenario, each
//!   with its **own** private registry, folds them into one master via
//!   [`Metrics::absorb`] (the same merge path a multi-process deployment
//!   would use — counters and histograms add, sketches take the register
//!   max), and prints the JSON snapshot plus the Prometheus text
//!   exposition.
//! * `serve-metrics <scenario>` binds a std-only HTTP endpoint
//!   ([`MetricsServer`]) and keeps replaying the scenario on a worker
//!   thread so `curl /metrics` observes counters moving live; `GET
//!   /shutdown` stops both the workload and the server.
//! * `metrics-smoke` is the in-process end-to-end check the CI script
//!   runs: server on an ephemeral port, workload on a worker thread, a
//!   scrape loop that validates every body with
//!   [`dp_metrics::validate_exposition`], key-metric assertions, and a
//!   clean HTTP-initiated shutdown.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use diffprov_core::Scenario;
use dp_metrics::{render_prometheus, validate_exposition, Metrics, MetricsServer, Snapshot};
use dp_types::{Error, Result};

/// Replays both executions of `scenario`, each against a private live
/// registry, and merges the two snapshots (plus whatever the process-global
/// registry gathered, when `DP_METRICS=1` enabled it) into one.
///
/// The per-execution registries are deliberate: they exercise
/// [`Metrics::absorb`], the cross-registry merge path, on every invocation
/// rather than only in unit tests.
pub fn scenario_snapshot(scenario: &Scenario) -> Result<Snapshot> {
    let master = Metrics::enabled();
    for exec in [&scenario.good_exec, &scenario.bad_exec] {
        let mut exec = exec.clone();
        let private = Metrics::enabled();
        exec.metrics = private.clone();
        exec.replay()?;
        master.absorb(&private.snapshot());
    }
    if Metrics::global().is_enabled() {
        // Under DP_METRICS=1 the store/recorder/pipeline layers metered
        // the process-global registry during those replays; fold it in.
        master.absorb(&Metrics::global().snapshot());
    }
    Ok(master.snapshot())
}

/// Renders the one-shot `metrics <scenario>` report: the JSON snapshot
/// followed by the Prometheus text exposition (validated before printing,
/// so a malformed exposition fails loudly here rather than at scrape time).
pub fn one_shot(scenario: &Scenario) -> Result<String> {
    let snap = scenario_snapshot(scenario)?;
    let prom = render_prometheus(&snap);
    validate_exposition(&prom).map_err(|e| Error::Engine(format!("bad exposition: {e}")))?;
    Ok(format!("{}\n{}", snap.to_json(), prom))
}

/// Serves `/metrics` on `addr` while a worker thread replays `scenario` in
/// a loop, so scrapes observe live movement. Returns after `GET /shutdown`
/// (or [`MetricsServer::shutdown`] via Ctrl-C-less automation), reporting
/// how many replay rounds the workload completed.
pub fn serve(scenario: &Scenario, addr: &str) -> Result<u64> {
    let metrics = Metrics::enabled();
    let server = MetricsServer::serve(metrics.clone(), addr)
        .map_err(|e| Error::Engine(format!("binding {addr}: {e}")))?;
    println!(
        "  serving http://{0}/metrics  (also /metrics.json, /healthz; GET /shutdown stops)",
        server.local_addr()
    );
    let (worker, stop) = spawn_workload(scenario, &metrics);
    while !server.stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::SeqCst);
    let rounds = worker.join().map_err(|_| worker_panic())??;
    server.shutdown();
    println!("  shutdown requested; workload completed {rounds} replay round(s)");
    Ok(rounds)
}

/// The end-to-end smoke test `scripts/check.sh` runs: scrape a live server
/// under load, validate every body, assert the workload's metrics landed,
/// and shut down over HTTP. Exits nonzero (via the returned error) on any
/// failure.
pub fn smoke(scenario: &Scenario) -> Result<()> {
    let metrics = Metrics::enabled();
    let server = MetricsServer::serve(metrics.clone(), "127.0.0.1:0")
        .map_err(|e| Error::Engine(format!("binding ephemeral port: {e}")))?;
    let addr = server.local_addr();
    let (worker, stop) = spawn_workload(scenario, &metrics);

    let mut scrapes = 0u32;
    let mut last_events = 0u64;
    for _ in 0..20 {
        let (status, body) = get(addr, "/metrics")?;
        if status != 200 {
            return Err(Error::Engine(format!("/metrics returned {status}")));
        }
        validate_exposition(&body)
            .map_err(|e| Error::Engine(format!("scrape {scrapes}: bad exposition: {e}")))?;
        if let Some(line) = body
            .lines()
            .find(|l| l.starts_with("dp_engine_events_total "))
        {
            last_events = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
        }
        scrapes += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, json) = get(addr, "/metrics.json")?;
    if status != 200 || !json.starts_with('{') {
        return Err(Error::Engine(format!("/metrics.json returned {status}")));
    }
    let (status, health) = get(addr, "/healthz")?;
    if status != 200 || health.trim() != "ok" {
        return Err(Error::Engine(format!("/healthz returned {status}: {health}")));
    }

    stop.store(true, Ordering::SeqCst);
    let rounds = worker.join().map_err(|_| worker_panic())??;

    // The workload must have actually registered: events counted, the
    // run-time histogram populated, and the tuple sketch non-empty.
    let snap = metrics.snapshot();
    if snap.counter_value("dp_engine_events_total", &[]) == 0 {
        return Err(Error::Engine("no engine events metered".into()));
    }
    if snap.histogram("dp_engine_run_seconds", &[]).is_none() {
        return Err(Error::Engine("dp_engine_run_seconds never observed".into()));
    }
    if snap.hll_estimate("dp_engine_distinct_tuples", &[]) < 1.0 {
        return Err(Error::Engine("distinct-tuple sketch is empty".into()));
    }
    if last_events == 0 {
        return Err(Error::Engine(
            "scrapes never observed dp_engine_events_total > 0".into(),
        ));
    }

    let (status, _) = get(addr, "/shutdown")?;
    if status != 200 || !server.stop_requested() {
        return Err(Error::Engine("HTTP shutdown was not honored".into()));
    }
    server.shutdown();
    println!(
        "  metrics-smoke: {scrapes} valid scrapes over {rounds} replay round(s); \
         {} families, ~{:.0} distinct tuples; HTTP shutdown clean",
        snap.families.len(),
        snap.hll_estimate("dp_engine_distinct_tuples", &[])
    );
    Ok(())
}

/// Spawns the serve/smoke workload: replay `scenario`'s bad execution in a
/// loop against `metrics` until `stop` is raised; returns the round count.
fn spawn_workload(
    scenario: &Scenario,
    metrics: &Metrics,
) -> (std::thread::JoinHandle<Result<u64>>, Arc<AtomicBool>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_worker = Arc::clone(&stop);
    let mut exec = scenario.bad_exec.clone();
    exec.metrics = metrics.clone();
    let handle = std::thread::spawn(move || -> Result<u64> {
        let mut rounds = 0u64;
        while !stop_worker.load(Ordering::SeqCst) {
            exec.replay()?;
            rounds += 1;
        }
        Ok(rounds)
    });
    (handle, stop)
}

fn worker_panic() -> Error {
    Error::Engine("workload thread panicked".into())
}

/// A minimal scrape client over raw [`TcpStream`]: returns the status code
/// and body. (The server closes each connection after responding, so
/// read-to-end terminates.)
fn get(addr: SocketAddr, path: &str) -> Result<(u16, String)> {
    let io = |e: std::io::Error| Error::Engine(format!("GET {path}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(io)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: dp\r\nConnection: close\r\n\r\n"
    )
    .map_err(io)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(io)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_cmd::find_scenario;

    /// The one-shot report carries both surfaces, and the merged registry
    /// shows engine activity from both executions.
    #[test]
    fn one_shot_report_shape() {
        let scenario = find_scenario("SDN1").unwrap();
        let snap = scenario_snapshot(&scenario).unwrap();
        assert!(snap.counter_value("dp_engine_events_total", &[]) > 0);
        assert!(snap.histogram("dp_engine_run_seconds", &[]).is_some());
        assert!(snap.hll_estimate("dp_engine_distinct_tuples", &[]) >= 1.0);
        let text = one_shot(&scenario).unwrap();
        assert!(text.starts_with('{'), "{text}");
        assert!(text.contains("# TYPE dp_engine_events_total counter"), "{text}");
    }

    /// Merging two per-execution registries at least sums the event
    /// counters of the individual replays.
    #[test]
    fn absorb_merges_both_executions() {
        let scenario = find_scenario("SDN1").unwrap();
        let solo = {
            let mut exec = scenario.bad_exec.clone();
            let m = Metrics::enabled();
            exec.metrics = m.clone();
            exec.replay().unwrap();
            m.snapshot().counter_value("dp_engine_events_total", &[])
        };
        let merged = scenario_snapshot(&scenario)
            .unwrap()
            .counter_value("dp_engine_events_total", &[]);
        assert!(solo > 0);
        assert!(merged > solo, "merged {merged} vs solo {solo}");
    }

    /// The full smoke path passes in-process.
    #[test]
    fn smoke_passes() {
        let scenario = find_scenario("SDN1").unwrap();
        smoke(&scenario).unwrap();
    }
}
