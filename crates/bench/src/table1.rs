//! Table 1: vertexes returned by five diagnostic techniques across the
//! eight scenarios.
//!
//! | row             | meaning                                        |
//! |-----------------|------------------------------------------------|
//! | good example    | vertexes of the reference provenance tree (Y!) |
//! | bad example     | vertexes of the faulty tree (Y!)               |
//! | plain tree diff | multiset symmetric difference of the two       |
//! | DiffProv        | tuples in `Δ_{B→G}` (per round for SDN4)       |

use std::fmt;

use diffprov_core::Scenario;
use dp_provenance::plain_tree_diff;
use dp_types::Result;

/// One column of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Scenario name.
    pub query: String,
    /// Good-tree vertex count.
    pub good: usize,
    /// Bad-tree vertex count.
    pub bad: usize,
    /// Plain-diff vertex count.
    pub plain_diff: usize,
    /// DiffProv changes per round.
    pub diffprov_per_round: Vec<usize>,
    /// Whether the alignment verified.
    pub verified: bool,
}

impl Table1Row {
    /// Total DiffProv answer size.
    pub fn diffprov_total(&self) -> usize {
        self.diffprov_per_round.iter().sum()
    }
}

/// Runs one scenario and measures all five techniques.
pub fn measure(scenario: &Scenario) -> Result<Table1Row> {
    // The two Y! baselines: full provenance queries on each tree.
    let rg = scenario.good_exec.replay()?;
    let good_tree = rg
        .query_at(&scenario.good_event.tref, scenario.good_event.at)
        .ok_or_else(|| dp_types::Error::Engine(format!("{}: good event missing", scenario.name)))?;
    let rb = scenario.bad_exec.replay()?;
    let bad_tree = rb
        .query_at(&scenario.bad_event.tref, scenario.bad_event.at)
        .ok_or_else(|| dp_types::Error::Engine(format!("{}: bad event missing", scenario.name)))?;
    // The strawman of Section 2.5.
    let diff = plain_tree_diff(&good_tree, &bad_tree);
    // DiffProv.
    let report = scenario.diagnose()?;
    if let Some(f) = &report.failure {
        return Err(dp_types::Error::Engine(format!(
            "{}: DiffProv failed: {f}",
            scenario.name
        )));
    }
    Ok(Table1Row {
        query: scenario.name.to_string(),
        good: good_tree.len(),
        bad: bad_tree.len(),
        plain_diff: diff.len(),
        diffprov_per_round: report.rounds.iter().map(|r| r.changes.len()).collect(),
        verified: report.verified,
    })
}

/// Runs all eight scenarios of Table 1.
pub fn table1() -> Result<Vec<Table1Row>> {
    let mut rows = Vec::new();
    for s in dp_sdn::all_sdn_scenarios() {
        rows.push(measure(&s)?);
    }
    for s in dp_mapreduce::all_mr_scenarios() {
        rows.push(measure(&s)?);
    }
    Ok(rows)
}

/// Renders rows in the paper's layout.
pub struct Table1Display<'a>(pub &'a [Table1Row]);

impl fmt::Display for Table1Display<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<22}", "Query")?;
        for r in self.0 {
            write!(f, "{:>9}", r.query)?;
        }
        writeln!(f)?;
        write!(f, "{:<22}", "Good example (T_G)")?;
        for r in self.0 {
            write!(f, "{:>9}", r.good)?;
        }
        writeln!(f)?;
        write!(f, "{:<22}", "Bad example (T_B)")?;
        for r in self.0 {
            write!(f, "{:>9}", r.bad)?;
        }
        writeln!(f)?;
        write!(f, "{:<22}", "Plain tree diff")?;
        for r in self.0 {
            write!(f, "{:>9}", r.plain_diff)?;
        }
        writeln!(f)?;
        write!(f, "{:<22}", "DiffProv")?;
        for r in self.0 {
            let s = r
                .diffprov_per_round
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("/");
            write!(f, "{:>9}", s)?;
        }
        writeln!(f)
    }
}
