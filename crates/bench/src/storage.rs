//! Figures 5 and 6 (logging rate vs. traffic rate / packet size) and the
//! MapReduce log-size measurements of Section 6.5.
//!
//! The logging engine writes fixed-size records per packet (header +
//! timestamp), so the logging rate is `record_bytes × packets_per_second`.
//! We *measure* the record size by generating a real trace, streaming it
//! through the SDN1 border switch, and encoding its base-event log under
//! the storage model — then scale to each traffic rate, exactly as the
//! paper scales its measurement to 1 Mbps–10 Gbps.
//!
//! Since the durable layered store landed, the simulated [`StorageModel`]
//! cost runs next to a **real** measurement: the same border log sealed
//! into on-disk layer files, with the per-packet cost taken from actual
//! file sizes (codec framing, checksums and all).

use std::fmt;
use std::sync::Arc;

use dp_mapreduce::{build_job, generate as gen_corpus, CorpusConfig, JobConfig, Pipeline};
use dp_replay::layers::default_layer_events;
use dp_replay::{DurableStore, EventLog, Execution, StorageModel};
use dp_sdn::{generate as gen_trace, sdn_program, TraceConfig, Topology};
use dp_types::{NodeId, Result, Sym};

/// The sequential-write rate of the paper's commodity SSD (bytes/s).
pub const SSD_RATE: f64 = 400e6;

/// Measured cost of logging one packet at the border switch.
pub struct PacketLogCost {
    /// Encoded bytes per packet record under the [`StorageModel`].
    pub bytes_per_packet: f64,
    /// Real on-disk bytes per packet record: the same packet log sealed
    /// into durable layer files, measured from the file sizes.
    pub disk_bytes_per_packet: f64,
    /// Packets measured.
    pub packets: usize,
    /// Wall-clock seconds the engine took to ingest the trace (sanity:
    /// logging keeps up).
    pub ingest_seconds: f64,
}

/// Streams `packets` packets of `packet_len` bytes through a minimal SDN1
/// border configuration and measures the per-packet log record size.
pub fn packet_log_cost(packets: usize, packet_len: i64) -> Result<PacketLogCost> {
    let mut topo = Topology::new("ctl");
    topo.switches(&["S1", "S2"]);
    topo.link("S1", "S2");
    let p_host = topo.host("S2", "sink");
    let program = sdn_program("ctl")?;
    let mut exec = Execution::new(Arc::clone(&program));
    topo.emit(&mut exec.log, 10);
    let ctl = NodeId::new("ctl");
    let any = dp_types::prefix::cidr("0.0.0.0/0");
    exec.log.insert(
        10,
        ctl.clone(),
        dp_sdn::cfg_entry(1, "S1", 1, any, any, topo.port_towards("S1", "S2")),
    );
    exec.log
        .insert(10, ctl, dp_sdn::cfg_entry(2, "S2", 1, any, any, p_host));

    let trace = gen_trace(&TraceConfig {
        packets,
        packet_len,
        ..Default::default()
    });
    for (i, p) in trace.packets.into_iter().enumerate() {
        exec.log.insert(100 + i as u64, "S1", p);
    }

    // The border-switch packet log: pktIn records only.
    let model = StorageModel::default();
    let pkt_in = Sym::new("pktIn");
    let mut border_log = EventLog::new();
    for e in exec.log.events().iter() {
        if e.tuple.table == pkt_in {
            border_log.push(e.clone());
        }
    }
    let bytes = model.log_bytes(&border_log) as f64;

    // The real cost: seal the same packet log into durable layer files
    // and take the measured file sizes.
    let mut store = DurableStore::temp()?;
    let border_events = border_log.events();
    for chunk in border_events.chunks(default_layer_events()) {
        store.seal_events(chunk)?;
    }
    let disk_bytes = store.layer_bytes() as f64;

    let t0 = std::time::Instant::now();
    exec.replay_null()?;
    let ingest_seconds = t0.elapsed().as_secs_f64();

    Ok(PacketLogCost {
        bytes_per_packet: bytes / packets as f64,
        disk_bytes_per_packet: disk_bytes / packets as f64,
        packets,
        ingest_seconds,
    })
}

/// One point of Figure 5 or 6.
#[derive(Clone, Debug)]
pub struct LoggingPoint {
    /// Traffic rate in bits/s.
    pub traffic_bps: f64,
    /// Packet size in bytes.
    pub packet_len: i64,
    /// Resulting logging rate in bytes/s (storage-model record size).
    pub logging_rate: f64,
    /// Resulting logging rate in bytes/s from real sealed-layer sizes.
    pub disk_logging_rate: f64,
}

impl LoggingPoint {
    /// True when the point stays under the SSD's sequential write rate —
    /// for both the modeled and the measured on-disk record size.
    pub fn within_ssd(&self) -> bool {
        self.logging_rate < SSD_RATE && self.disk_logging_rate < SSD_RATE
    }
}

/// Figure 5: logging rate for traffic rates from 1 Mbps to 10 Gbps at a
/// fixed 500-byte packet size.
pub fn fig5(cost: &PacketLogCost) -> Vec<LoggingPoint> {
    let rates = [1e6, 1e7, 1e8, 1e9, 2.5e9, 5e9, 1e10];
    rates
        .iter()
        .map(|&bps| {
            let pps = bps / (8.0 * 500.0);
            LoggingPoint {
                traffic_bps: bps,
                packet_len: 500,
                logging_rate: pps * cost.bytes_per_packet,
                disk_logging_rate: pps * cost.disk_bytes_per_packet,
            }
        })
        .collect()
}

/// Figure 6: logging rate at a fixed 1 Gbps for packet sizes 500–1500 B.
/// Each point uses its own measured per-packet cost (which is constant —
/// that is the point).
pub fn fig6(costs: &[(i64, PacketLogCost)]) -> Vec<LoggingPoint> {
    costs
        .iter()
        .map(|(len, cost)| {
            let pps = 1e9 / (8.0 * *len as f64);
            LoggingPoint {
                traffic_bps: 1e9,
                packet_len: *len,
                logging_rate: pps * cost.bytes_per_packet,
                disk_logging_rate: pps * cost.disk_bytes_per_packet,
            }
        })
        .collect()
}

/// Section 6.5: MapReduce log sizes — the log stores only metadata of the
/// inputs, so it is kilobytes for corpora of megabytes.
pub struct MrStorage {
    /// Total corpus bytes processed.
    pub corpus_bytes: u64,
    /// Bytes of the *metadata* the logging engine actually keeps (config,
    /// file checksums, code version, fences).
    pub log_bytes: u64,
}

/// Measures the MapReduce logging footprint for a corpus scale factor.
pub fn mr_storage(lines_per_file: usize, files: usize) -> Result<MrStorage> {
    let corpus = gen_corpus(&CorpusConfig {
        files,
        lines_per_file,
        ..Default::default()
    });
    let corpus_bytes: u64 = corpus.iter().map(|f| f.bytes).sum();
    let exec = build_job(
        &JobConfig {
            pipeline: Pipeline::Imperative,
            ..Default::default()
        },
        &corpus,
    );
    // The durable log excludes the input *records* (identified by file
    // checksum and re-read at replay time, as long as the files are still
    // in HDFS — Section 6.5): count everything except lineIn/wordIn.
    let model = StorageModel::default();
    let line_in = Sym::new("lineIn");
    let word_in = Sym::new("wordIn");
    let mut log_bytes = 0u64;
    for e in exec.log.events().iter() {
        if e.tuple.table != line_in && e.tuple.table != word_in {
            log_bytes += model.event_bytes(e) as u64;
        }
    }
    Ok(MrStorage {
        corpus_bytes,
        log_bytes,
    })
}

/// Human-readable rate.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e6 {
        format!("{:8.2} MB/s", bytes_per_sec / 1e6)
    } else {
        format!("{:8.2} kB/s", bytes_per_sec / 1e3)
    }
}

/// Human-readable bit rate.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:6.1} Gbps", bps / 1e9)
    } else {
        format!("{:6.1} Mbps", bps / 1e6)
    }
}

impl fmt::Display for LoggingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:4} B -> {} (disk {})  {}",
            fmt_bps(self.traffic_bps),
            self.packet_len,
            fmt_rate(self.logging_rate),
            fmt_rate(self.disk_logging_rate).trim_start(),
            if self.within_ssd() { "(< SSD 400 MB/s)" } else { "(EXCEEDS SSD)" }
        )
    }
}
