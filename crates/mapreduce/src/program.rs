//! The MapReduce (WordCount) system model.
//!
//! The paper evaluates each MapReduce scenario twice: **-D**, a declarative
//! re-implementation in NDlog rules, and **-I**, the instrumented
//! imperative job (Hadoop with ~200 lines of provenance hooks). Both live
//! here over the same schemas:
//!
//! * the declarative pipeline is [`MR_DECLARATIVE_RULES`] — map, shuffle,
//!   and reduce all as datalog (reduce uses the engine's `agg_sum`
//!   aggregate, NDlog's `a<...>`);
//! * the imperative pipeline replaces map and shuffle with
//!   [`MapperNative`] and [`PartitionNative`] — ordinary Rust functions
//!   that *report* their dependencies per emitted key-value pair, exactly
//!   the paper's report-mode instrumentation.
//!
//! Job-wide state (the 235-entry configuration, the mapper code version,
//! the declarative mapper parameter) lives at the driver node and is
//! distributed to workers by derivation, so a misconfiguration is a single
//! mutable base tuple — which is what DiffProv then finds.

use std::sync::Arc;

use dp_ndlog::expr::{fnv1a, hash_value};
use dp_ndlog::{Emitter, NativeRule, NodeView, Program};
use dp_types::{FieldType, NodeId, Result, Schema, SchemaRegistry, Sym, Tuple, TupleRef, Value};

/// Checksum of the correct mapper implementation ("bytecode signature").
pub const GOOD_MAPPER: u64 = 0x600d_600d_600d_600d;
/// Checksum of the buggy mapper that drops the first word of each line.
pub const BAD_MAPPER: u64 = 0xbad0_bad0_bad0_bad0;

/// The declarative (NDlog) map and shuffle rules.
pub const MR_DECLARATIVE_RULES: &str = r#"
% Distribute job-wide state from the driver to the workers.
dcfg   cfgAt(@W, K, V)  :- mrConfig(@D, K, V), worker(@D, W).
dparam paramAt(@W, P)   :- mapperParam(@D, P), worker(@D, W).

% Map: one output pair per word, subject to the mapper parameter (the
% declarative equivalent of the MR2 code change: MinP=1 drops first words).
dmap   mapOut(@M, W, 1, F, L, P) :- wordIn(@M, F, L, P, W),
           paramAt(@M, MinP), P >= MinP.

% Shuffle: hash-partition by word across the reducer pool.
dpart  partIn(@R, W, C, F, L, P) :- mapOut(@M, W, C, F, L, P),
           cfgAt(@M, "mapreduce.job.reduces", NR),
           RI := hmod(W, NR), R := node_at("r", RI).

% Reduce: NDlog aggregation — when the driver's fence arrives, sum each
% word's counts from the pairs present at the reducer.
dred   wordCount(@R, W, agg_sum(C)) :- reduceStart(@R, G),
           partIn(@R, W, C, F, L, P).
"#;

/// Rules shared by the imperative pipeline (state distribution only; map
/// and shuffle are native).
pub const MR_IMPERATIVE_RULES: &str = r#"
dcfg   cfgAt(@W, K, V)  :- mrConfig(@D, K, V), worker(@D, W).
dcode  codeAt(@W, V)    :- mapperCode(@D, V), worker(@D, W).
"#;

/// Schemas shared by both pipelines.
pub fn mr_schemas() -> SchemaRegistry {
    use dp_types::TableKind::*;
    let mut reg = SchemaRegistry::new();
    // Driver-side state.
    reg.declare(
        Schema::new(
            "mrConfig",
            MutableBase,
            [("key", FieldType::Str), ("val", FieldType::Int)],
        )
        .with_key([0]),
    );
    reg.declare(Schema::new("mapperParam", MutableBase, [("minPos", FieldType::Int)]));
    reg.declare(Schema::new("mapperCode", MutableBase, [("ver", FieldType::Sum)]));
    reg.declare(Schema::new("worker", ImmutableBase, [("name", FieldType::Str)]));
    // Inputs.
    reg.declare(Schema::new(
        "inputFile",
        ImmutableBase,
        [("name", FieldType::Str), ("sum", FieldType::Sum), ("bytes", FieldType::Int)],
    ));
    reg.declare(Schema::new(
        "wordIn",
        ImmutableBase,
        [
            ("file", FieldType::Str),
            ("line", FieldType::Int),
            ("pos", FieldType::Int),
            ("word", FieldType::Str),
        ],
    ));
    reg.declare(Schema::new(
        "lineIn",
        ImmutableBase,
        [("file", FieldType::Str), ("line", FieldType::Int), ("text", FieldType::Str)],
    ));
    // Phase fences (driver-issued stimuli).
    reg.declare(Schema::new("combineStart", ImmutableBase, [("gen", FieldType::Int)]));
    reg.declare(Schema::new("reduceStart", ImmutableBase, [("gen", FieldType::Int)]));
    reg.declare(Schema::new("commitStart", ImmutableBase, [("gen", FieldType::Int)]));
    // Distributed state and pipeline products.
    reg.declare(
        Schema::new(
            "cfgAt",
            Derived,
            [("key", FieldType::Str), ("val", FieldType::Int)],
        ),
    );
    reg.declare(Schema::new("paramAt", Derived, [("minPos", FieldType::Int)]));
    reg.declare(Schema::new("codeAt", Derived, [("ver", FieldType::Sum)]));
    reg.declare(Schema::new(
        "mapOut",
        Derived,
        [
            ("word", FieldType::Str),
            ("count", FieldType::Int),
            ("file", FieldType::Str),
            ("line", FieldType::Int),
            ("pos", FieldType::Int),
        ],
    ));
    reg.declare(Schema::new(
        "partIn",
        Derived,
        [
            ("word", FieldType::Str),
            ("count", FieldType::Int),
            ("file", FieldType::Str),
            ("line", FieldType::Int),
            ("pos", FieldType::Int),
        ],
    ));
    reg.declare(Schema::new(
        "wordCount",
        Derived,
        [("word", FieldType::Str), ("count", FieldType::Int)],
    ));
    reg.declare(Schema::new("outputFile", Derived, [("sum", FieldType::Sum)]));
    reg
}

/// The declarative WordCount program (MR*-D). Map, shuffle, and reduce are
/// all NDlog rules (reduce via the `agg_sum` aggregate); only the output
/// checksum remains native (hashing is genuinely imperative).
pub fn mr_declarative_program() -> Result<Arc<Program>> {
    Program::builder(mr_schemas())
        .rules_text(MR_DECLARATIVE_RULES)?
        .native(Arc::new(OutputNative))
        .build()
}

/// The imperative WordCount program (MR*-I): native map/shuffle with
/// report-mode provenance.
pub fn mr_imperative_program() -> Result<Arc<Program>> {
    Program::builder(mr_schemas())
        .rules_text(MR_IMPERATIVE_RULES)?
        .native(Arc::new(MapperNative))
        .native(Arc::new(PartitionNative))
        .native(Arc::new(ReduceNative))
        .native(Arc::new(OutputNative))
        .build()
}

/// The imperative pipeline with a map-side **combiner**: per-mapper
/// pre-aggregation replaces the per-pair shuffle. Counts are identical;
/// the shuffle ships one `partIn` per `(mapper, word)` instead of one per
/// occurrence, and map-side provenance granularity coarsens accordingly
/// (each shuffled pair reports *all* its contributing occurrences).
pub fn mr_combiner_program() -> Result<Arc<Program>> {
    Program::builder(mr_schemas())
        .rules_text(MR_IMPERATIVE_RULES)?
        .native(Arc::new(MapperNative))
        .native(Arc::new(CombinerNative))
        .native(Arc::new(ReduceNative))
        .native(Arc::new(OutputNative))
        .build()
}

fn sym(s: &str) -> Sym {
    Sym::new(s)
}

/// The imperative mapper: splits each input line into words and emits one
/// `(word, 1)` pair per word. The implementation is selected by the job's
/// registered mapper-code checksum — [`BAD_MAPPER`] reproduces the MR2 bug
/// (the first word of each line is dropped). Every emission reports its
/// dependencies: the input line and the code version.
pub struct MapperNative;

impl NativeRule for MapperNative {
    fn name(&self) -> Sym {
        sym("imap")
    }

    fn triggers(&self) -> Vec<Sym> {
        vec![sym("lineIn")]
    }

    fn fire(&self, view: &NodeView<'_>, trigger: &Tuple, out: &mut Emitter) -> Result<()> {
        let Some(code) = view.table(&sym("codeAt")).next() else {
            return Ok(()); // no code deployed yet
        };
        let version = code.args[0].as_sum()?;
        let file = trigger.args[0].clone();
        let line = trigger.args[1].clone();
        let text = trigger.args[2].as_str()?.as_str().to_string();
        let body = vec![
            TupleRef::new(view.node.clone(), trigger.clone()),
            TupleRef::new(view.node.clone(), code.clone()),
        ];
        for (pos, word) in text.split_whitespace().enumerate() {
            if version == BAD_MAPPER && pos == 0 {
                continue; // the bug: first word of each line is dropped
            }
            out.emit(
                view.node.clone(),
                Tuple::new(
                    "mapOut",
                    vec![
                        Value::str(word),
                        Value::Int(1),
                        file.clone(),
                        line.clone(),
                        Value::Int(pos as i64),
                    ],
                ),
                body.clone(),
            );
        }
        Ok(())
    }
}

/// The imperative shuffle: routes each map output pair to reducer
/// `hash(word) % numReducers`, reporting the configuration entry it read.
pub struct PartitionNative;

impl PartitionNative {
    fn reducers(view: &NodeView<'_>) -> Result<Option<(Tuple, i64)>> {
        for t in view.table(&sym("cfgAt")) {
            if t.args[0] == Value::str("mapreduce.job.reduces") {
                let n = t.args[1].as_int()?;
                return Ok(Some((t.clone(), n)));
            }
        }
        Ok(None)
    }
}

impl NativeRule for PartitionNative {
    fn name(&self) -> Sym {
        sym("ipart")
    }

    fn triggers(&self) -> Vec<Sym> {
        vec![sym("mapOut")]
    }

    fn fire(&self, view: &NodeView<'_>, trigger: &Tuple, out: &mut Emitter) -> Result<()> {
        let Some((cfg, n)) = Self::reducers(view)? else {
            return Ok(());
        };
        if n <= 0 {
            return Ok(());
        }
        let word = &trigger.args[0];
        let idx = (hash_value(word) % (n as u64)) as i64;
        let reducer = NodeId::new(format!("r{idx}"));
        out.emit_delayed(
            reducer,
            Tuple::new("partIn", trigger.args.clone()),
            vec![
                TupleRef::new(view.node.clone(), trigger.clone()),
                TupleRef::new(view.node.clone(), cfg),
            ],
            1,
        );
        Ok(())
    }
}

/// The map-side combiner: on the driver's `combineStart` fence, aggregate
/// this mapper's `mapOut` pairs per word and ship one pre-summed pair to
/// the word's reducer. Reported dependencies: the fence, the shuffle
/// configuration, and every contributing map output.
pub struct CombinerNative;

impl NativeRule for CombinerNative {
    fn name(&self) -> Sym {
        sym("combine")
    }

    fn triggers(&self) -> Vec<Sym> {
        vec![sym("combineStart")]
    }

    fn fire(&self, view: &NodeView<'_>, trigger: &Tuple, out: &mut Emitter) -> Result<()> {
        use std::collections::BTreeMap;
        let Some((cfg, n)) = PartitionNative::reducers(view)? else {
            return Ok(());
        };
        if n <= 0 {
            return Ok(());
        }
        let mut groups: BTreeMap<Sym, (i64, Vec<TupleRef>)> = BTreeMap::new();
        for t in view.table(&sym("mapOut")) {
            let word = t.args[0].as_str()?.clone();
            let count = t.args[1].as_int()?;
            let entry = groups.entry(word).or_insert_with(|| {
                (
                    0,
                    vec![
                        TupleRef::new(view.node.clone(), trigger.clone()),
                        TupleRef::new(view.node.clone(), cfg.clone()),
                    ],
                )
            });
            entry.0 += count;
            entry.1.push(TupleRef::new(view.node.clone(), t.clone()));
        }
        for (word, (total, body)) in groups {
            let idx = (hash_value(&Value::Str(word.clone())) % (n as u64)) as i64;
            let reducer = NodeId::new(format!("r{idx}"));
            out.emit_delayed(
                reducer,
                Tuple::new(
                    "partIn",
                    vec![
                        Value::Str(word),
                        Value::Int(total),
                        // Pre-aggregated: the origin is the whole mapper,
                        // not a single occurrence. Stamping the mapper
                        // name also keeps pairs from different mappers
                        // distinct tuples.
                        Value::str(view.node.as_str()),
                        Value::Int(-1),
                        Value::Int(-1),
                    ],
                ),
                body,
                1,
            );
        }
        Ok(())
    }
}

/// The reduce aggregation (NDlog's `a<sum>` equivalent): when the driver's
/// `reduceStart` fence arrives at a reducer, sum the counts of each word
/// from the `partIn` tuples present and emit one `wordCount` per word. The
/// reported dependencies are the fence plus every contributing pair.
pub struct ReduceNative;

impl NativeRule for ReduceNative {
    fn name(&self) -> Sym {
        sym("reduce")
    }

    fn triggers(&self) -> Vec<Sym> {
        vec![sym("reduceStart")]
    }

    fn fire(&self, view: &NodeView<'_>, trigger: &Tuple, out: &mut Emitter) -> Result<()> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<Sym, (i64, Vec<TupleRef>)> = BTreeMap::new();
        for t in view.table(&sym("partIn")) {
            let word = t.args[0].as_str()?.clone();
            let count = t.args[1].as_int()?;
            let entry = groups.entry(word).or_insert_with(|| {
                (0, vec![TupleRef::new(view.node.clone(), trigger.clone())])
            });
            entry.0 += count;
            entry.1.push(TupleRef::new(view.node.clone(), t.clone()));
        }
        for (word, (total, body)) in groups {
            out.emit(
                view.node.clone(),
                Tuple::new("wordCount", vec![Value::Str(word), Value::Int(total)]),
                body,
            );
        }
        Ok(())
    }
}

/// Output commit: checksums the reducer's sorted `(word, count)` pairs into
/// an `outputFile` tuple — the per-reducer output file identity the user
/// compares across runs.
pub struct OutputNative;

impl NativeRule for OutputNative {
    fn name(&self) -> Sym {
        sym("commit")
    }

    fn triggers(&self) -> Vec<Sym> {
        vec![sym("commitStart")]
    }

    fn fire(&self, view: &NodeView<'_>, trigger: &Tuple, out: &mut Emitter) -> Result<()> {
        let mut body = vec![TupleRef::new(view.node.clone(), trigger.clone())];
        let mut content = String::new();
        for t in view.table(&sym("wordCount")) {
            content.push_str(&format!("{}\t{}\n", t.args[0], t.args[1]));
            body.push(TupleRef::new(view.node.clone(), t.clone()));
        }
        if body.len() == 1 {
            return Ok(()); // reducer produced nothing: no output file
        }
        out.emit(
            view.node.clone(),
            Tuple::new("outputFile", vec![Value::Sum(fnv1a(content.as_bytes()))]),
            body,
        );
        Ok(())
    }
}
