//! Job construction: turns a corpus + configuration into an execution log.

use std::sync::Arc;

use dp_ndlog::expr::hash_value;
use dp_replay::Execution;
use dp_types::{tuple, LogicalTime, NodeId, Tuple, Value};

use crate::corpus::InputFile;
use crate::program::{mr_combiner_program, mr_declarative_program, mr_imperative_program};

/// Which pipeline implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// NDlog rules (the paper's `-D` variants).
    Declarative,
    /// Native Rust map/shuffle with report-mode provenance (`-I`).
    Imperative,
}

/// Job parameters.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Declarative or imperative pipeline.
    pub pipeline: Pipeline,
    /// `mapreduce.job.reduces`.
    pub reducers: i64,
    /// Number of mapper workers (input is split round-robin).
    pub mappers: usize,
    /// Declarative mapper parameter: minimum word position emitted
    /// (0 = correct; 1 = the MR2-D bug).
    pub mapper_min_pos: i64,
    /// Imperative mapper version checksum ([`crate::program::GOOD_MAPPER`]
    /// or [`crate::program::BAD_MAPPER`]).
    pub mapper_code: u64,
    /// Total configuration entries (the paper instruments 235; the one
    /// that matters plus padding).
    pub config_entries: usize,
    /// Enable the map-side combiner (imperative pipeline only).
    pub combiner: bool,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            pipeline: Pipeline::Declarative,
            reducers: 4,
            mappers: 2,
            mapper_min_pos: 0,
            mapper_code: crate::program::GOOD_MAPPER,
            config_entries: 235,
            combiner: false,
        }
    }
}

/// The reducer-pool size (nodes `r0..r7`); `reducers` must not exceed it.
pub const REDUCER_POOL: usize = 8;

/// Driver node name.
pub const DRIVER: &str = "drv";

/// Logical times of the job phases.
pub const T_CONFIG: LogicalTime = 10;
/// Input records start here.
pub const T_INPUT: LogicalTime = 1_000;
/// The reduce fence.
pub const T_REDUCE: LogicalTime = 1_000_000;
/// The map-side combine fence (combiner jobs only).
pub const T_COMBINE: LogicalTime = 500_000;
/// The output-commit fence.
pub const T_COMMIT: LogicalTime = 2_000_000;

/// Builds the execution log for one WordCount job over `files`.
pub fn build_job(cfg: &JobConfig, files: &[InputFile]) -> Execution {
    assert!(cfg.reducers as usize <= REDUCER_POOL);
    assert!(
        !(cfg.combiner && cfg.pipeline == Pipeline::Declarative),
        "the combiner is an imperative-pipeline feature"
    );
    let program = match (cfg.pipeline, cfg.combiner) {
        (Pipeline::Declarative, _) => mr_declarative_program(),
        (Pipeline::Imperative, false) => mr_imperative_program(),
        (Pipeline::Imperative, true) => mr_combiner_program(),
    }
    .expect("MapReduce program builds");
    let mut exec = Execution::new(Arc::clone(&program));
    let drv = NodeId::new(DRIVER);

    // Worker registry: mappers and the reducer pool all receive job state.
    let mappers: Vec<String> = (0..cfg.mappers).map(|i| format!("m{i}")).collect();
    for m in &mappers {
        exec.log.insert(T_CONFIG, drv.clone(), tuple!("worker", m.as_str()));
    }
    for r in 0..REDUCER_POOL {
        exec.log
            .insert(T_CONFIG, drv.clone(), tuple!("worker", format!("r{r}").as_str()));
    }

    // Configuration: the entry under test plus padding entries.
    exec.log.insert(
        T_CONFIG,
        drv.clone(),
        tuple!("mrConfig", "mapreduce.job.reduces", cfg.reducers),
    );
    for i in 1..cfg.config_entries {
        exec.log.insert(
            T_CONFIG,
            drv.clone(),
            tuple!("mrConfig", format!("mapreduce.padding.{i:03}").as_str(), i as i64),
        );
    }
    match cfg.pipeline {
        Pipeline::Declarative => {
            exec.log
                .insert(T_CONFIG, drv.clone(), tuple!("mapperParam", cfg.mapper_min_pos));
        }
        Pipeline::Imperative => {
            exec.log.insert(
                T_CONFIG,
                drv.clone(),
                Tuple::new("mapperCode", vec![Value::Sum(cfg.mapper_code)]),
            );
        }
    }

    // Input: file metadata at the driver (what the logging engine actually
    // stores, Section 6.5) and records at the mappers, split round-robin.
    let mut t = T_INPUT;
    let mut split = 0usize;
    for f in files {
        exec.log.insert(
            T_CONFIG,
            drv.clone(),
            Tuple::new(
                "inputFile",
                vec![
                    Value::str(&f.name),
                    Value::Sum(f.checksum),
                    Value::Int(f.bytes as i64),
                ],
            ),
        );
        for (lineno, line) in f.lines.iter().enumerate() {
            let mapper = NodeId::new(&mappers[split % mappers.len()]);
            split += 1;
            match cfg.pipeline {
                Pipeline::Imperative => {
                    exec.log.insert(
                        t,
                        mapper,
                        tuple!("lineIn", f.name.as_str(), lineno as i64, line.as_str()),
                    );
                }
                Pipeline::Declarative => {
                    for (pos, word) in line.split_whitespace().enumerate() {
                        exec.log.insert(
                            t,
                            mapper.clone(),
                            tuple!("wordIn", f.name.as_str(), lineno as i64, pos as i64, word),
                        );
                    }
                }
            }
            t += 1;
        }
    }

    // The combine fence at every mapper (combiner jobs only).
    if cfg.combiner {
        for m in &mappers {
            exec.log
                .insert(T_COMBINE, NodeId::new(m), tuple!("combineStart", 1));
        }
    }
    // Phase fences at every reducer in the pool.
    for r in 0..REDUCER_POOL {
        exec.log
            .insert(T_REDUCE, NodeId::new(format!("r{r}")), tuple!("reduceStart", 1));
        exec.log
            .insert(T_COMMIT, NodeId::new(format!("r{r}")), tuple!("commitStart", 1));
    }
    exec
}

/// The reducer index a word is shuffled to under `n` reducers — for
/// locating events in tests and scenarios.
pub fn reducer_of(word: &str, n: i64) -> usize {
    (hash_value(&Value::str(word)) % (n as u64)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{expected_counts, generate, CorpusConfig};
    use dp_types::TupleRef;

    fn corpus() -> Vec<crate::corpus::InputFile> {
        generate(&CorpusConfig {
            files: 1,
            lines_per_file: 12,
            words_per_line: 4,
            vocabulary: 10,
            ..Default::default()
        })
    }

    fn count_of(exec: &Execution, word: &str, n: i64) -> Option<i64> {
        let r = exec.replay().unwrap();
        let reducer = NodeId::new(format!("r{}", reducer_of(word, n)));
        let view = r.engine.view(&reducer)?;
        let count = view
            .table(&dp_types::Sym::new("wordCount"))
            .find(|t| t.args[0] == Value::str(word))
            .map(|t| t.args[1].as_int().unwrap());
        count
    }

    #[test]
    fn declarative_and_imperative_agree_with_ground_truth() {
        let files = corpus();
        let truth = expected_counts(&files, false);
        let decl = build_job(&JobConfig::default(), &files);
        let imp = build_job(
            &JobConfig {
                pipeline: Pipeline::Imperative,
                ..Default::default()
            },
            &files,
        );
        for (word, expected) in truth.iter().take(6) {
            assert_eq!(count_of(&decl, word, 4), Some(*expected), "decl {word}");
            assert_eq!(count_of(&imp, word, 4), Some(*expected), "imp {word}");
        }
    }

    #[test]
    fn buggy_imperative_mapper_drops_first_words() {
        let files = corpus();
        let truth_skip = expected_counts(&files, true);
        let exec = build_job(
            &JobConfig {
                pipeline: Pipeline::Imperative,
                mapper_code: crate::program::BAD_MAPPER,
                ..Default::default()
            },
            &files,
        );
        // "alpha" only ever appears as a first word; with the bug its count
        // matches the skip-first ground truth (possibly zero/absent).
        let got = count_of(&exec, "alpha", 4);
        assert_eq!(got, truth_skip.get("alpha").copied());
    }

    #[test]
    fn buggy_declarative_param_matches_imperative_bug() {
        let files = corpus();
        let d = build_job(
            &JobConfig {
                mapper_min_pos: 1,
                ..Default::default()
            },
            &files,
        );
        let i = build_job(
            &JobConfig {
                pipeline: Pipeline::Imperative,
                mapper_code: crate::program::BAD_MAPPER,
                ..Default::default()
            },
            &files,
        );
        for word in ["alpha", "beta", "w000", "w001"] {
            assert_eq!(count_of(&d, word, 4), count_of(&i, word, 4), "{word}");
        }
    }

    #[test]
    fn changing_reducer_count_moves_words() {
        let files = corpus();
        let truth = expected_counts(&files, false);
        let exec5 = build_job(
            &JobConfig {
                reducers: 5,
                ..Default::default()
            },
            &files,
        );
        // Counts are preserved but live at hmod(word, 5) now.
        let r = exec5.replay().unwrap();
        let mut moved = 0;
        for (word, expected) in truth.iter() {
            let r5 = reducer_of(word, 5);
            let r4 = reducer_of(word, 4);
            let node = NodeId::new(format!("r{r5}"));
            let found = r
                .engine
                .view(&node)
                .and_then(|v| {
                    v.table(&dp_types::Sym::new("wordCount"))
                        .find(|t| t.args[0] == Value::str(word))
                        .map(|t| t.args[1].as_int().unwrap())
                });
            assert_eq!(found, Some(*expected), "{word}");
            if r5 != r4 {
                moved += 1;
            }
        }
        assert!(moved > 0, "changing the reducer count must move some words");
    }

    #[test]
    fn combiner_preserves_counts_and_shrinks_the_shuffle() {
        let files = corpus();
        let plain = build_job(
            &JobConfig {
                pipeline: Pipeline::Imperative,
                ..Default::default()
            },
            &files,
        );
        let combined = build_job(
            &JobConfig {
                pipeline: Pipeline::Imperative,
                combiner: true,
                ..Default::default()
            },
            &files,
        );
        // Counts agree with ground truth under both pipelines.
        let truth = expected_counts(&files, false);
        for (word, expected) in truth.iter().take(5) {
            assert_eq!(count_of(&plain, word, 4), Some(*expected), "plain {word}");
            assert_eq!(count_of(&combined, word, 4), Some(*expected), "combined {word}");
        }
        // The combiner ships strictly fewer shuffle pairs.
        let shuffle_pairs = |exec: &Execution| {
            let r = exec.replay().unwrap();
            let mut n = 0usize;
            for (_, st) in r.engine.nodes() {
                n += st.table(&dp_types::Sym::new("partIn")).count();
            }
            n
        };
        let plain_pairs = shuffle_pairs(&plain);
        let combined_pairs = shuffle_pairs(&combined);
        assert!(
            combined_pairs < plain_pairs,
            "combiner did not shrink the shuffle: {combined_pairs} vs {plain_pairs}"
        );
    }

    #[test]
    fn combiner_rejects_declarative_pipeline() {
        let files = corpus();
        let res = std::panic::catch_unwind(|| {
            build_job(
                &JobConfig {
                    pipeline: Pipeline::Declarative,
                    combiner: true,
                    ..Default::default()
                },
                &files,
            )
        });
        assert!(res.is_err());
    }

    #[test]
    fn output_files_exist_and_differ_across_configs() {
        let files = corpus();
        let a = build_job(&JobConfig::default(), &files);
        let b = build_job(
            &JobConfig {
                mapper_min_pos: 1,
                ..Default::default()
            },
            &files,
        );
        let ra = a.replay().unwrap();
        let rb = b.replay().unwrap();
        // Find some reducer where both runs produced an output file with
        // different checksums (the MR2 symptom).
        let mut differs = false;
        for k in 0..REDUCER_POOL {
            let node = NodeId::new(format!("r{k}"));
            let fa = ra.engine.view(&node).and_then(|v| {
                v.table(&dp_types::Sym::new("outputFile")).next().cloned()
            });
            let fb = rb.engine.view(&node).and_then(|v| {
                v.table(&dp_types::Sym::new("outputFile")).next().cloned()
            });
            if let (Some(fa), Some(fb)) = (fa, fb) {
                if fa != fb {
                    differs = true;
                }
                // Both are queryable provenance roots.
                let tref = TupleRef::new(node, fa);
                assert!(ra.query(&tref).is_some());
            }
        }
        assert!(differs, "the buggy mapper must change some output file");
    }
}
