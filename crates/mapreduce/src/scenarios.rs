//! The MapReduce diagnostic scenarios of Section 6.2: MR1 (configuration
//! change) and MR2 (code change), each in declarative (`-D`) and
//! imperative (`-I`) form.
//!
//! Unlike the SDN scenarios, the reference event comes from a **separate
//! execution**: the user compares today's (bad) job run against
//! yesterday's (good) run over the same input.

use diffprov_core::{QueryEvent, Scenario};
use dp_types::{tuple, NodeId, Tuple, TupleRef};

use crate::corpus::{expected_counts, generate, CorpusConfig, InputFile};
use crate::job::{build_job, reducer_of, JobConfig, Pipeline};
use crate::program::{BAD_MAPPER, GOOD_MAPPER};

fn small_corpus() -> Vec<InputFile> {
    generate(&CorpusConfig {
        files: 2,
        lines_per_file: 16,
        words_per_line: 5,
        vocabulary: 24,
        ..Default::default()
    })
}

/// The word whose count the MR2 bug destroys (a line-initial word).
const MR2_WORD: &str = "alpha";

/// Picks the most frequent corpus word that visibly moves between
/// reducers when the pool size changes from `a` to `b` — the MR1 symptom
/// ("almost all the emitted words end up at a different reducer node").
fn moving_word(files: &[InputFile], a: i64, b: i64) -> (String, i64) {
    let counts = expected_counts(files, false);
    let mut best: Option<(String, i64)> = None;
    for (w, c) in counts {
        if reducer_of(&w, a) != reducer_of(&w, b)
            && best.as_ref().is_none_or(|(_, bc)| c > *bc)
        {
            best = Some((w, c));
        }
    }
    best.expect("some word moves between reducer pools")
}

fn word_count_event(word: &str, count: i64, reducers: i64) -> QueryEvent {
    let node = NodeId::new(format!("r{}", reducer_of(word, reducers)));
    QueryEvent::new(
        TupleRef::new(node, tuple!("wordCount", word, count)),
        u64::MAX,
    )
}

fn mr1(pipeline: Pipeline, name: &'static str, description: &'static str) -> Scenario {
    let files = small_corpus();
    let (word, count) = moving_word(&files, 4, 5);
    let good_cfg = JobConfig {
        pipeline,
        reducers: 4,
        ..Default::default()
    };
    // The accident: the user changed mapreduce.job.reduces from 4 to 5, so
    // almost every word lands on a different reducer node.
    let bad_cfg = JobConfig {
        reducers: 5,
        ..good_cfg.clone()
    };
    Scenario {
        name,
        description,
        good_exec: build_job(&good_cfg, &files),
        bad_exec: build_job(&bad_cfg, &files),
        good_event: word_count_event(&word, count, 4),
        bad_event: word_count_event(&word, count, 5),
        expected_changes: 1,
        expected_rounds: 1,
    }
}

/// MR1-D: reducer-count configuration change, declarative pipeline.
pub fn mr1_d() -> Scenario {
    mr1(
        Pipeline::Declarative,
        "MR1-D",
        "mapreduce.job.reduces accidentally changed from 4 to 5 (declarative NDlog job)",
    )
}

/// MR1-I: reducer-count configuration change, imperative pipeline.
pub fn mr1_i() -> Scenario {
    mr1(
        Pipeline::Imperative,
        "MR1-I",
        "mapreduce.job.reduces accidentally changed from 4 to 5 (instrumented imperative job)",
    )
}

fn output_file_event(files: &[InputFile], cfg: &JobConfig, word: &str) -> QueryEvent {
    // The per-reducer output file holding `word` in this configuration.
    let exec = build_job(cfg, files);
    let r = exec.replay().expect("job replays");
    let node = NodeId::new(format!("r{}", reducer_of(word, cfg.reducers)));
    let view = r.engine.view(&node).expect("reducer has state");
    let out: Tuple = view
        .table(&dp_types::Sym::new("outputFile"))
        .next()
        .expect("reducer produced an output file")
        .clone();
    QueryEvent::new(TupleRef::new(node, out), u64::MAX)
}

/// MR2-D: mapper "code" change, declarative pipeline — the bug is the
/// declarative equivalent, a `mapperParam` minimum-position of 1 that
/// drops the first word of every line.
pub fn mr2_d() -> Scenario {
    let files = small_corpus();
    let good_cfg = JobConfig {
        pipeline: Pipeline::Declarative,
        ..Default::default()
    };
    let bad_cfg = JobConfig {
        mapper_min_pos: 1,
        ..good_cfg.clone()
    };
    Scenario {
        name: "MR2-D",
        description: "new mapper drops the first word of each line (declarative equivalent: \
                      mapperParam minPos=1)",
        good_event: output_file_event(&files, &good_cfg, MR2_WORD),
        bad_event: output_file_event(&files, &bad_cfg, MR2_WORD),
        good_exec: build_job(&good_cfg, &files),
        bad_exec: build_job(&bad_cfg, &files),
        expected_changes: 1,
        expected_rounds: 1,
    }
}

/// MR2-I: mapper code change, imperative pipeline — the buggy
/// implementation is identified by its bytecode checksum, which is exactly
/// what DiffProv pinpoints (it cannot see inside the native code).
pub fn mr2_i() -> Scenario {
    let files = small_corpus();
    let good_cfg = JobConfig {
        pipeline: Pipeline::Imperative,
        mapper_code: GOOD_MAPPER,
        ..Default::default()
    };
    let bad_cfg = JobConfig {
        mapper_code: BAD_MAPPER,
        ..good_cfg.clone()
    };
    Scenario {
        name: "MR2-I",
        description: "new mapper build drops the first word of each line; identified by \
                      its code checksum",
        good_event: output_file_event(&files, &good_cfg, MR2_WORD),
        bad_event: output_file_event(&files, &bad_cfg, MR2_WORD),
        good_exec: build_job(&good_cfg, &files),
        bad_exec: build_job(&bad_cfg, &files),
        expected_changes: 1,
        expected_rounds: 1,
    }
}

/// All four MapReduce scenarios, in Table 1 order.
pub fn all_mr_scenarios() -> Vec<Scenario> {
    vec![mr1_d(), mr2_d(), mr1_i(), mr2_i()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::Value;

    #[test]
    fn mr1_d_finds_the_reducer_count_change() {
        let report = mr1_d().diagnose().unwrap();
        assert!(report.succeeded(), "{report}");
        assert_eq!(report.delta.len(), 1, "{report}");
        let c = &report.delta[0];
        assert_eq!(c.node.as_str(), "drv");
        assert_eq!(
            c.before,
            Some(tuple!("mrConfig", "mapreduce.job.reduces", 5))
        );
        assert_eq!(c.after, Some(tuple!("mrConfig", "mapreduce.job.reduces", 4)));
        assert!(report.verified, "{report}");
    }

    #[test]
    fn mr1_i_finds_the_reducer_count_change() {
        let report = mr1_i().diagnose().unwrap();
        assert!(report.succeeded(), "{report}");
        assert_eq!(report.delta.len(), 1, "{report}");
        assert_eq!(
            report.delta[0].after,
            Some(tuple!("mrConfig", "mapreduce.job.reduces", 4))
        );
        assert!(report.verified, "{report}");
    }

    #[test]
    fn mr2_d_finds_the_mapper_parameter() {
        let report = mr2_d().diagnose().unwrap();
        assert!(report.succeeded(), "{report}");
        assert_eq!(report.delta.len(), 1, "{report}");
        assert_eq!(report.delta[0].before, Some(tuple!("mapperParam", 1)));
        assert_eq!(report.delta[0].after, Some(tuple!("mapperParam", 0)));
        assert!(report.verified, "{report}");
    }

    #[test]
    fn mr2_i_pinpoints_the_code_version() {
        let report = mr2_i().diagnose().unwrap();
        assert!(report.succeeded(), "{report}");
        assert_eq!(report.delta.len(), 1, "{report}");
        let c = &report.delta[0];
        assert_eq!(
            c.before,
            Some(Tuple::new("mapperCode", vec![Value::Sum(BAD_MAPPER)]))
        );
        assert_eq!(
            c.after,
            Some(Tuple::new("mapperCode", vec![Value::Sum(GOOD_MAPPER)]))
        );
        assert!(report.verified, "{report}");
    }

    #[test]
    fn mr_trees_are_large_but_answers_are_tiny() {
        for s in all_mr_scenarios() {
            let report = s.diagnose().unwrap();
            assert!(report.succeeded(), "{}: {report}", s.name);
            assert!(
                report.good_tree_size >= 100,
                "{}: good tree only {} vertexes",
                s.name,
                report.good_tree_size
            );
            assert_eq!(report.answer_size(), s.expected_changes, "{}", s.name);
        }
    }
}
