//! Deterministic text corpora — the stand-in for the paper's Wikipedia
//! dataset and 1 GB text corpus.
//!
//! Words are drawn from a Zipf-like distribution over a synthetic
//! vocabulary, with a twist that matters for scenario MR2: lines begin
//! with one of a small set of distinguished words (`alpha`, `beta`, ...),
//! so "the buggy mapper drops the first word of each line" has a clean,
//! queryable effect on specific word counts.

use dp_types::DetRng;

use dp_ndlog::expr::fnv1a;

/// One input file: a name, its lines, and a content checksum (the paper's
/// HDFS file checksum, used by the replay engine to identify inputs).
#[derive(Clone, Debug)]
pub struct InputFile {
    /// File name.
    pub name: String,
    /// Lines of whitespace-separated words.
    pub lines: Vec<String>,
    /// FNV-1a checksum of the content.
    pub checksum: u64,
    /// Content size in bytes.
    pub bytes: u64,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of files.
    pub files: usize,
    /// Lines per file.
    pub lines_per_file: usize,
    /// Words per line (including the distinguished first word).
    pub words_per_line: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 17,
            files: 2,
            lines_per_file: 30,
            words_per_line: 6,
            vocabulary: 40,
        }
    }
}

/// The distinguished words that may start a line.
pub const FIRST_WORDS: [&str; 2] = ["alpha", "beta"];

/// Generates a corpus.
pub fn generate(cfg: &CorpusConfig) -> Vec<InputFile> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let vocab: Vec<String> = (0..cfg.vocabulary).map(|i| format!("w{i:03}")).collect();
    let mut files = Vec::with_capacity(cfg.files);
    for f in 0..cfg.files {
        let mut lines = Vec::with_capacity(cfg.lines_per_file);
        for _ in 0..cfg.lines_per_file {
            let mut words = Vec::with_capacity(cfg.words_per_line);
            words.push(FIRST_WORDS[rng.gen_range_usize(0, FIRST_WORDS.len())].to_string());
            for _ in 1..cfg.words_per_line {
                // Zipf-ish: rank ~ floor(vocab^u) biases towards low ranks.
                let u: f64 = rng.gen_f64();
                let rank = ((cfg.vocabulary as f64).powf(u) - 1.0) as usize;
                words.push(vocab[rank.min(cfg.vocabulary - 1)].clone());
            }
            lines.push(words.join(" "));
        }
        let content = lines.join("\n");
        files.push(InputFile {
            name: format!("part-{f:05}.txt"),
            checksum: fnv1a(content.as_bytes()),
            bytes: content.len() as u64,
            lines,
        });
    }
    files
}

/// Reference word counts for a corpus, optionally skipping the first word
/// of each line (the MR2 bug), as ground truth for tests.
pub fn expected_counts(
    files: &[InputFile],
    skip_first: bool,
) -> std::collections::BTreeMap<String, i64> {
    let mut out = std::collections::BTreeMap::new();
    for f in files {
        for line in &f.lines {
            for (i, w) in line.split_whitespace().enumerate() {
                if skip_first && i == 0 {
                    continue;
                }
                *out.entry(w.to_string()).or_insert(0) += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(&CorpusConfig::default());
        let b = generate(&CorpusConfig::default());
        assert_eq!(a[0].lines, b[0].lines);
        assert_eq!(a[0].checksum, b[0].checksum);
    }

    #[test]
    fn lines_start_with_distinguished_words() {
        let files = generate(&CorpusConfig::default());
        for f in &files {
            for l in &f.lines {
                let first = l.split_whitespace().next().unwrap();
                assert!(FIRST_WORDS.contains(&first), "{first}");
            }
        }
    }

    #[test]
    fn skipping_first_words_changes_counts() {
        let files = generate(&CorpusConfig::default());
        let full = expected_counts(&files, false);
        let skipped = expected_counts(&files, true);
        let total_lines: i64 = files.iter().map(|f| f.lines.len() as i64).sum();
        let alpha_beta_full = full.get("alpha").unwrap_or(&0) + full.get("beta").unwrap_or(&0);
        let alpha_beta_skipped =
            skipped.get("alpha").copied().unwrap_or(0) + skipped.get("beta").copied().unwrap_or(0);
        assert_eq!(alpha_beta_full - alpha_beta_skipped, total_lines);
    }

    #[test]
    fn checksums_differ_across_files() {
        let files = generate(&CorpusConfig {
            files: 3,
            ..Default::default()
        });
        assert_ne!(files[0].checksum, files[1].checksum);
        assert_ne!(files[1].checksum, files[2].checksum);
    }
}
