//! # dp-mapreduce — the MapReduce substrate of the DiffProv suite
//!
//! A deterministic WordCount system in two flavours, mirroring the paper's
//! evaluation (Section 6):
//!
//! * the **declarative** pipeline expresses map and shuffle as NDlog rules
//!   (the paper's RapidNet re-implementation, scenarios `MR1-D`/`MR2-D`);
//! * the **imperative** pipeline runs plain Rust map/shuffle functions
//!   wrapped in [`dp_ndlog::NativeRule`]s that report their data
//!   dependencies per key-value pair — the paper's ~200-line Hadoop
//!   instrumentation, scenarios `MR1-I`/`MR2-I`.
//!
//! [`corpus`] generates the input texts (the Wikipedia-dataset stand-in),
//! [`job`] assembles execution logs, and [`scenarios`] packages the MR1
//! (configuration change) and MR2 (code change) diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod job;
pub mod program;
pub mod scenarios;

pub use corpus::{expected_counts, generate, CorpusConfig, InputFile, FIRST_WORDS};
pub use job::{build_job, reducer_of, JobConfig, Pipeline, DRIVER, REDUCER_POOL};
pub use program::{
    mr_combiner_program, mr_declarative_program, mr_imperative_program, mr_schemas,
    CombinerNative, MapperNative, OutputNative, PartitionNative, ReduceNative, BAD_MAPPER,
    GOOD_MAPPER,
};
pub use scenarios::{all_mr_scenarios, mr1_d, mr1_i, mr2_d, mr2_i};
