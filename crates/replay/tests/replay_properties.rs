//! Randomized tests on the replay layer: log ordering, change application,
//! and storage accounting. Inputs come from the in-repo deterministic
//! generator (offline build — no property-testing framework).

use std::sync::Arc;

use dp_ndlog::{Program, TupleChange};
use dp_replay::{apply_changes, EventLog, Execution, StorageModel};
use dp_types::{tuple, DetRng, FieldType, NodeId, Schema, SchemaRegistry, TableKind, Tuple, Value};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("e", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("k", TableKind::MutableBase, [("v", FieldType::Int)]));
    reg.declare(Schema::new("d", TableKind::Derived, [("y", FieldType::Int)]));
    Program::builder(reg)
        .rules_text("r d(@N, Y) :- e(@N, X), k(@N, V), Y := X + V.")
        .unwrap()
        .build()
        .unwrap()
}

/// The log is always sorted by due time, no matter the insertion order.
#[test]
fn log_is_sorted() {
    let mut rng = DetRng::seed_from_u64(0x4E91_0001);
    for _ in 0..64 {
        let mut dues: Vec<u64> = (0..rng.gen_range_usize(1, 40))
            .map(|_| rng.gen_range_u64(0, 1000))
            .collect();
        let mut log = EventLog::new();
        for (i, &due) in dues.iter().enumerate() {
            log.insert(due, "n", tuple!("e", i as i64));
        }
        let got: Vec<u64> = log.events().iter().map(|e| e.due).collect();
        dues.sort_unstable();
        assert_eq!(got, dues);
    }
}

/// Storage accounting is additive: the log's byte size is the sum of its
/// records, and appending grows it by exactly the record size.
#[test]
fn storage_is_additive() {
    let mut rng = DetRng::seed_from_u64(0x4E91_0002);
    for _ in 0..64 {
        let values: Vec<i64> = (0..rng.gen_range_usize(1, 20))
            .map(|_| rng.gen_range_i64(-100, 100))
            .collect();
        let model = StorageModel::default();
        let mut log = EventLog::new();
        let mut expected = 0u64;
        for (i, &v) in values.iter().enumerate() {
            log.insert(i as u64, "n", tuple!("e", v));
            let events = log.events();
            let last = events.iter().find(|e| e.tuple == tuple!("e", v)).unwrap();
            expected += model.event_bytes(last) as u64;
        }
        assert_eq!(model.log_bytes(&log), expected);
    }
}

/// Replacement changes preserve log length; deletions shrink it by the
/// number of matched events; insertions grow it by one.
#[test]
fn apply_changes_preserves_counts() {
    let mut rng = DetRng::seed_from_u64(0x4E91_0003);
    for _ in 0..64 {
        let ks: Vec<i64> = (0..rng.gen_range_usize(1, 6))
            .map(|_| rng.gen_range_i64(-5, 5))
            .collect();
        let target = rng.gen_range_i64(-5, 5);
        let mut log = EventLog::new();
        for (i, &k) in ks.iter().enumerate() {
            log.insert(i as u64, "n", tuple!("k", k));
        }
        let n = NodeId::new("n");
        let matched = ks.iter().filter(|&&k| k == target).count();

        // Replacement: same length.
        let replace = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("k", target)),
            after: Some(tuple!("k", 99)),
        }];
        let replaced = apply_changes(&log, &replace, 0);
        if matched > 0 {
            assert_eq!(replaced.len(), log.len());
            let rewritten = replaced
                .events()
                .iter()
                .filter(|e| e.tuple == tuple!("k", 99))
                .count();
            assert!(rewritten >= matched);
        } else {
            // Unmatched replacement falls back to one insertion.
            assert_eq!(replaced.len(), log.len() + 1);
        }

        // Deletion: shrinks by the matches.
        let delete = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("k", target)),
            after: None,
        }];
        let deleted = apply_changes(&log, &delete, 0);
        assert_eq!(deleted.len(), log.len() - matched);

        // Pure insertion: grows by one.
        let insert = [TupleChange {
            node: n,
            before: None,
            after: Some(tuple!("k", 77)),
        }];
        let inserted = apply_changes(&log, &insert, 0);
        assert_eq!(inserted.len(), log.len() + 1);
    }
}

/// End-to-end: replaying with a replacement change produces exactly the
/// state of an execution built with the replacement from the start.
#[test]
fn patched_replay_equals_rebuilt_execution() {
    let mut rng = DetRng::seed_from_u64(0x4E91_0004);
    for _ in 0..64 {
        let inputs: Vec<i64> = (0..rng.gen_range_usize(1, 10))
            .map(|_| rng.gen_range_i64(-20, 20))
            .collect();
        let k_before = rng.gen_range_i64(-5, 5);
        let k_after = rng.gen_range_i64(-5, 5);
        let build = |k: i64| {
            let mut exec = Execution::new(program());
            exec.log.insert(0, "n", tuple!("k", k));
            for (i, &x) in inputs.iter().enumerate() {
                exec.log.insert(10 + i as u64, "n", tuple!("e", x));
            }
            exec
        };
        let orig = build(k_before);
        let delta = [TupleChange {
            node: NodeId::new("n"),
            before: Some(tuple!("k", k_before)),
            after: Some(tuple!("k", k_after)),
        }];
        let patched = orig.replay_with(&delta, 0).unwrap();
        let rebuilt = build(k_after).replay().unwrap();
        // Same derived state.
        let n = NodeId::new("n");
        let dump = |r: &dp_replay::Replayed| -> Vec<Tuple> {
            r.engine
                .view(&n)
                .map(|v| v.table(&dp_types::Sym::new("d")).cloned().collect())
                .unwrap_or_default()
        };
        assert_eq!(dump(&patched), dump(&rebuilt));
    }
}

#[test]
fn string_fields_cost_their_length() {
    let model = StorageModel::default();
    let mut log = EventLog::new();
    log.insert(0, "n", Tuple::new("e", vec![Value::str("ab")]));
    log.insert(1, "n", Tuple::new("e", vec![Value::str("abcdef")]));
    let a = model.event_bytes(&log.events()[0]);
    let b = model.event_bytes(&log.events()[1]);
    assert_eq!(b - a, 4);
}
