//! Property tests on the replay layer: log ordering, change application,
//! and storage accounting.

use std::sync::Arc;

use proptest::prelude::*;

use dp_ndlog::{Program, TupleChange};
use dp_replay::{apply_changes, EventLog, Execution, StorageModel};
use dp_types::{tuple, FieldType, NodeId, Schema, SchemaRegistry, TableKind, Tuple, Value};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("e", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("k", TableKind::MutableBase, [("v", FieldType::Int)]));
    reg.declare(Schema::new("d", TableKind::Derived, [("y", FieldType::Int)]));
    Program::builder(reg)
        .rules_text("r d(@N, Y) :- e(@N, X), k(@N, V), Y := X + V.")
        .unwrap()
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log is always sorted by due time, no matter the insertion order.
    #[test]
    fn log_is_sorted(mut dues in proptest::collection::vec(0u64..1000, 1..40)) {
        let mut log = EventLog::new();
        for (i, &due) in dues.iter().enumerate() {
            log.insert(due, "n", tuple!("e", i as i64));
        }
        let got: Vec<u64> = log.events().iter().map(|e| e.due).collect();
        dues.sort_unstable();
        prop_assert_eq!(got, dues);
    }

    /// Storage accounting is additive: the log's byte size is the sum of
    /// its records, and appending grows it by exactly the record size.
    #[test]
    fn storage_is_additive(values in proptest::collection::vec(-100i64..100, 1..20)) {
        let model = StorageModel::default();
        let mut log = EventLog::new();
        let mut expected = 0u64;
        for (i, &v) in values.iter().enumerate() {
            log.insert(i as u64, "n", tuple!("e", v));
            let last = log.events().iter().find(|e| e.tuple == tuple!("e", v)).unwrap();
            expected += model.event_bytes(last) as u64;
        }
        prop_assert_eq!(model.log_bytes(&log), expected);
    }

    /// Replacement changes preserve log length; deletions shrink it by the
    /// number of matched events; insertions grow it by one.
    #[test]
    fn apply_changes_preserves_counts(
        ks in proptest::collection::vec(-5i64..5, 1..6),
        target in -5i64..5,
    ) {
        let mut log = EventLog::new();
        for (i, &k) in ks.iter().enumerate() {
            log.insert(i as u64, "n", tuple!("k", k));
        }
        let n = NodeId::new("n");
        let matched = ks.iter().filter(|&&k| k == target).count();

        // Replacement: same length.
        let replace = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("k", target)),
            after: Some(tuple!("k", 99)),
        }];
        let replaced = apply_changes(&log, &replace, 0);
        if matched > 0 {
            prop_assert_eq!(replaced.len(), log.len());
            let rewritten = replaced
                .events()
                .iter()
                .filter(|e| e.tuple == tuple!("k", 99))
                .count();
            prop_assert!(rewritten >= matched);
        } else {
            // Unmatched replacement falls back to one insertion.
            prop_assert_eq!(replaced.len(), log.len() + 1);
        }

        // Deletion: shrinks by the matches.
        let delete = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("k", target)),
            after: None,
        }];
        let deleted = apply_changes(&log, &delete, 0);
        prop_assert_eq!(deleted.len(), log.len() - matched);

        // Pure insertion: grows by one.
        let insert = [TupleChange {
            node: n,
            before: None,
            after: Some(tuple!("k", 77)),
        }];
        let inserted = apply_changes(&log, &insert, 0);
        prop_assert_eq!(inserted.len(), log.len() + 1);
    }

    /// End-to-end: replaying with a replacement change produces exactly the
    /// state of an execution built with the replacement from the start.
    #[test]
    fn patched_replay_equals_rebuilt_execution(
        inputs in proptest::collection::vec(-20i64..20, 1..10),
        k_before in -5i64..5,
        k_after in -5i64..5,
    ) {
        let build = |k: i64| {
            let mut exec = Execution::new(program());
            exec.log.insert(0, "n", tuple!("k", k));
            for (i, &x) in inputs.iter().enumerate() {
                exec.log.insert(10 + i as u64, "n", tuple!("e", x));
            }
            exec
        };
        let orig = build(k_before);
        let delta = [TupleChange {
            node: NodeId::new("n"),
            before: Some(tuple!("k", k_before)),
            after: Some(tuple!("k", k_after)),
        }];
        let patched = orig.replay_with(&delta, 0).unwrap();
        let rebuilt = build(k_after).replay().unwrap();
        // Same derived state.
        let n = NodeId::new("n");
        let dump = |r: &dp_replay::Replayed| -> Vec<Tuple> {
            r.engine
                .view(&n)
                .map(|v| v.table(&dp_types::Sym::new("d")).cloned().collect())
                .unwrap_or_default()
        };
        prop_assert_eq!(dump(&patched), dump(&rebuilt));
    }
}

#[test]
fn string_fields_cost_their_length() {
    let model = StorageModel::default();
    let mut log = EventLog::new();
    log.insert(0, "n", Tuple::new("e", vec![Value::str("ab")]));
    log.insert(1, "n", Tuple::new("e", vec![Value::str("abcdef")]));
    let a = model.event_bytes(&log.events()[0]);
    let b = model.event_bytes(&log.events()[1]);
    assert_eq!(b - a, 4);
}
