//! Crash-recovery proofs for the durable layered store.
//!
//! The central obligation: seal an execution's log into on-disk layers
//! plus durable checkpoints, "kill" the process (forget all in-memory
//! state), reopen the store from its directory alone, restore the newest
//! checkpoint and replay the on-disk tail — the resulting provenance
//! stream digest must be **bit-identical** to the crash-free run of the
//! same checkpointing process, across 1/2/4 shards. (Snapshot cuts
//! quiesce the derived cascade, so the checkpointing process's stream is
//! the well-defined recovery reference; without checkpoints the layer
//! stack must reproduce the uncut `stream_digest` exactly.) Corruption of
//! any store file must surface as a typed `Error::Codec`, never a panic.

use std::sync::Arc;

use dp_ndlog::Program;
use dp_replay::{DurableStore, Execution, ProvBackend, StoreMode};
use dp_types::{tuple, DetRng, Error, FieldType, NodeId, Schema, SchemaRegistry, TableKind, TupleRef};

fn program() -> Arc<Program> {
    let mut reg = SchemaRegistry::new();
    reg.declare(Schema::new("in", TableKind::ImmutableBase, [("x", FieldType::Int)]));
    reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
    reg.declare(Schema::new("out", TableKind::Derived, [("x", FieldType::Int)]));
    Program::builder(reg)
        .rules_text("r out(@N, Y) :- in(@N, X), cfg(@N, K), Y := X + K.")
        .unwrap()
        .build()
        .unwrap()
}

/// A multi-node execution with out-of-order ingest, duplicate due times,
/// and a config flip — enough structure that any ordering or boundary
/// mistake in the layer merge changes the digest.
fn execution(seed: u64) -> Execution {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut exec = Execution::new(program());
    exec.store_mode = StoreMode::Mem;
    let nodes = ["n1", "n2", "n3"];
    for n in nodes {
        exec.log.insert(0, n, tuple!("cfg", 10));
    }
    for i in 0..60i64 {
        let due = rng.gen_range_u64(1, 40);
        let node = nodes[rng.gen_range_usize(0, nodes.len())];
        exec.log.insert(due, node, tuple!("in", i));
    }
    // A mid-stream config change on one node.
    exec.log.delete(20, "n2", tuple!("cfg", 10));
    exec.log.insert(20, "n2", tuple!("cfg", 100));
    exec
}

/// Recovery is bit-identical: newest durable checkpoint + on-disk tail
/// reproduces the crash-free checkpointing run's stream digest, at 1, 2,
/// and 4 shards — and the tail is genuinely replayed, not vacuously empty.
#[test]
fn recovery_digest_is_bit_identical_across_shards() {
    for shards in [1usize, 2, 4] {
        let mut exec = execution(0xD15C_0001);
        exec.shards = shards;
        let (store, reference) = exec.spill_temp(16).unwrap();
        assert!(store.checkpoint_count() >= 2, "fixture must span checkpoints");
        assert!(store.layer_count() >= 3, "fixture must span layer files");
        let latest = store.latest_checkpoint().unwrap();
        assert!(
            latest.count < reference.1,
            "fixture must leave a non-empty tail past the last checkpoint"
        );
        // "Kill": reopen from the directory alone, with no in-memory state.
        let recovered = DurableStore::open(store.dir()).unwrap();
        assert_eq!(recovered.event_count(), exec.log.len() as u64);
        let digest = exec.recovered_stream_digest(&recovered).unwrap();
        assert_eq!(
            digest, reference,
            "recovery digest diverged from the crash-free run at {shards} shard(s)"
        );
    }
}

/// Without any checkpoint, recovery replays the whole layer stack from
/// scratch — and still lands on the same digest.
#[test]
fn recovery_without_checkpoints_replays_everything() {
    let exec = execution(0xD15C_0002);
    let uncut = exec.stream_digest().unwrap();
    let (store, reference) = exec.spill_temp(0).unwrap();
    assert_eq!(store.checkpoint_count(), 0);
    assert_eq!(reference, uncut, "no cuts: the reference is the uncut run");
    let recovered = DurableStore::open(store.dir()).unwrap();
    assert_eq!(exec.recovered_stream_digest(&recovered).unwrap(), uncut);
}

/// `DP_STORE=disk` semantics: a replay routed through the sealed layer
/// stack answers queries identically to the in-memory path.
#[test]
fn disk_mode_replay_is_observably_identical() {
    let mut mem = execution(0xD15C_0003);
    mem.provenance_backend = ProvBackend::Graph;
    let mut disk = execution(0xD15C_0003);
    disk.provenance_backend = ProvBackend::Graph;
    disk.store_mode = StoreMode::Disk;
    assert_eq!(disk.stream_digest().unwrap(), mem.stream_digest().unwrap());
    let m = mem.replay().unwrap();
    let d = disk.replay().unwrap();
    assert_eq!(m.now(), d.now());
    assert_eq!(m.graph().len(), d.graph().len());
    let n = NodeId::new("n2");
    let root = TupleRef::new(n, tuple!("out", 100));
    assert_eq!(
        m.query(&root).map(|t| t.render()),
        d.query(&root).map(|t| t.render())
    );
}

/// Durable replay-from-checkpoint mirrors the in-memory checkpoint path:
/// state is complete, recorded provenance covers only the tail.
#[test]
fn replay_from_durable_matches_replay_from_checkpoint() {
    let mut exec = execution(0xD15C_0004);
    exec.provenance_backend = ProvBackend::Graph;
    let (store, _) = exec.spill_temp(16).unwrap();
    let mem_store = exec.build_checkpoints(16).unwrap();
    let full = exec.replay().unwrap();
    let from = exec.log.horizon();
    let durable = exec.replay_from_durable(&store, from).unwrap();
    let fast = exec.replay_from_checkpoint(&mem_store, from).unwrap();
    assert_eq!(durable.now(), fast.now());
    assert_eq!(durable.now(), full.now());
    for n in ["n1", "n2", "n3"].map(NodeId::new) {
        for x in [10i64, 11, 20, 100, 110] {
            assert_eq!(
                durable.exists(&n, &tuple!("out", x)),
                full.exists(&n, &tuple!("out", x)),
                "state diverged at {n:?} out({x})"
            );
        }
    }
}

/// Every byte of every store file is covered by the checksum: flipping
/// any single bit makes `open` fail with a typed codec error — no panic,
/// no silent misread.
#[test]
fn corrupted_store_files_fail_closed_with_typed_errors() {
    let exec = execution(0xD15C_0005);
    let (store, reference) = exec.spill_temp(16).unwrap();
    let dir = store.dir().to_path_buf();
    let mut rng = DetRng::seed_from_u64(0xD15C_0006);
    for ext in ["dply", "dpck"] {
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some(ext))
            .unwrap_or_else(|| panic!("store has no .{ext} file"));
        let clean = std::fs::read(&path).unwrap();
        // Bit flips at random offsets, plus truncation.
        for _ in 0..16 {
            let mut bad = clean.clone();
            let byte = rng.gen_range_usize(0, bad.len());
            bad[byte] ^= 1 << rng.gen_range_u32(0, 8);
            std::fs::write(&path, &bad).unwrap();
            match DurableStore::open(&dir) {
                Err(Error::Codec { .. }) => {}
                Err(other) => panic!("corrupt .{ext}: expected codec error, got {other}"),
                Ok(_) => panic!("corrupt .{ext} opened cleanly"),
            }
        }
        let truncated = &clean[..clean.len() / 2];
        std::fs::write(&path, truncated).unwrap();
        assert!(
            matches!(DurableStore::open(&dir), Err(Error::Codec { .. })),
            "truncated .{ext} must be a typed codec error"
        );
        std::fs::write(&path, &clean).unwrap();
    }
    // Restored bytes open and recover cleanly again.
    let reopened = DurableStore::open(&dir).unwrap();
    assert_eq!(exec.recovered_stream_digest(&reopened).unwrap(), reference);
}

/// The rebuilt in-memory log from the layer stack replays identically to
/// the original log — full recovery of the mutable open layer.
#[test]
fn loaded_log_round_trips_through_the_layer_stack() {
    let exec = execution(0xD15C_0007);
    let (store, _) = exec.spill_temp(0).unwrap();
    let mut recovered = Execution::new(program());
    recovered.store_mode = StoreMode::Mem;
    recovered.log = store.load_log();
    assert_eq!(recovered.log.len(), exec.log.len());
    assert_eq!(recovered.log.horizon(), exec.log.horizon());
    assert_eq!(
        recovered.stream_digest().unwrap(),
        exec.stream_digest().unwrap()
    );
}
