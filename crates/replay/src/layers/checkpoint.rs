//! Durable checkpoint files.
//!
//! A durable checkpoint is the paper's Section 4.8 checkpoint made real
//! bytes: the engine's quiescent state at a due-time cut, plus the running
//! provenance-stream digest at that cut. Persisting the digest pair is
//! what makes recovery *provable*: [`dp_ndlog::HashSink`] folds the stream
//! left-to-right, so a sink resumed from `(digest, count)` and fed only
//! the tail replay finishes with exactly the digest of an uninterrupted
//! in-memory run — bit-identity without re-reading the aged-out prefix.
//!
//! ## File format (`DPCK` version 1)
//!
//! ```text
//! "DPCK" u16=1              header (magic + version)
//! u64    cut                every event with due <= cut is reflected
//! u64    digest  u64 count  HashSink state at the cut
//! snapshot                  EngineSnapshot::encode_into
//! u64    fnv64(everything above)
//! ```

use std::path::{Path, PathBuf};

use dp_ndlog::EngineSnapshot;
use dp_types::codec::{fnv64, Dec, Enc};
use dp_types::{Error, LogicalTime, Result};

/// Checkpoint-file magic.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"DPCK";
/// Current checkpoint-format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// A checkpoint as stored on disk: cut, resumable digest state, snapshot.
#[derive(Clone, Debug)]
pub struct DurableCheckpoint {
    /// The due-time boundary: all events with `due <= cut` are reflected.
    pub cut: LogicalTime,
    /// The provenance-stream digest after the events up to the cut.
    pub digest: u64,
    /// Events folded into `digest` so far.
    pub count: u64,
    /// The quiescent engine state at the cut.
    pub snapshot: EngineSnapshot,
    /// Size of the checkpoint file in bytes (0 until written).
    pub file_bytes: u64,
}

fn io_err(context: &'static str, path: &Path, e: std::io::Error) -> Error {
    Error::Engine(format!("{context} {}: {e}", path.display()))
}

/// Writes a checkpoint to `path`, returning the file size in bytes.
pub fn write_checkpoint(path: &Path, cp: &DurableCheckpoint) -> Result<u64> {
    let mut e = Enc::new();
    e.header(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
    e.u64(cp.cut);
    e.u64(cp.digest);
    e.u64(cp.count);
    cp.snapshot.encode_into(&mut e);
    let sum = fnv64(e.bytes());
    e.u64(sum);
    let bytes = e.into_bytes();
    std::fs::write(path, &bytes).map_err(|err| io_err("writing checkpoint", path, err))?;
    Ok(bytes.len() as u64)
}

/// Reads a checkpoint back, verifying the whole-file checksum first.
pub fn read_checkpoint(path: &Path) -> Result<DurableCheckpoint> {
    let bytes = std::fs::read(path).map_err(|err| io_err("reading checkpoint", path, err))?;
    if bytes.len() < 8 {
        return Err(Error::Codec {
            context: "checkpoint file",
            detail: format!("{} is too short to hold a checksum", path.display()),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut d = Dec::new(tail);
    let stored = d.u64("checkpoint checksum")?;
    if fnv64(body) != stored {
        return Err(Error::Codec {
            context: "checkpoint file",
            detail: format!("checksum mismatch in {}", path.display()),
        });
    }
    let mut d = Dec::new(body);
    d.header(CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
    let cut = d.u64("checkpoint cut")?;
    let digest = d.u64("checkpoint digest")?;
    let count = d.u64("checkpoint digest count")?;
    let snapshot = EngineSnapshot::decode_from(&mut d)?;
    if !d.is_exhausted() {
        return Err(Error::Codec {
            context: "checkpoint file",
            detail: format!("{} trailing byte(s) before the checksum", d.remaining()),
        });
    }
    Ok(DurableCheckpoint {
        cut,
        digest,
        count,
        snapshot,
        file_bytes: bytes.len() as u64,
    })
}

/// The canonical file name for a checkpoint at `cut`; zero-padded so
/// lexicographic directory order is cut order.
pub fn checkpoint_file_name(cut: LogicalTime) -> PathBuf {
    PathBuf::from(format!("ckpt-{cut:020}.dpck"))
}
