//! The layered durable base-event/checkpoint store.
//!
//! This is the real spill path behind the paper's storage story (Section
//! 5, Figs 5–6): the in-memory [`EventLog`] is the *open layer*; sealing
//! writes immutable, sorted layer files keyed by (node, due range)
//! ([`layer`]), and durable checkpoints pair an [`EngineSnapshot`] with
//! the resumable provenance-stream digest at their cut ([`checkpoint`]).
//! The arrangement follows neon's pageserver layer stack: an ephemeral
//! open layer seals into immutable on-disk layers, and reads are served
//! through the merged stack.
//!
//! ## Exactness of read-through ordering
//!
//! The replay order is total: `(due, seq)`, where `seq` is the event's
//! position in the in-memory log's replay order, persisted with each
//! record at seal time. Layer files each hold a strictly increasing
//! `(due, seq)` run, so a k-way merge on that key across any set of
//! layers — whatever their due-range overlaps — yields exactly the one
//! global order the in-memory log would have produced. Replay is
//! deterministic in that order, so every replay served through the layer
//! stack is bit-identical to an in-memory replay: the differential suite
//! runs with `DP_STORE=disk` to prove it.
//!
//! ## Recovery
//!
//! Recovery = newest durable checkpoint + the on-disk tail (`due > cut`)
//! through the existing deterministic machinery. The checkpoint carries
//! the [`HashSink`] fold state at its cut, so the recovered stream digest
//! continues the fold and must equal the digest of an uninterrupted
//! in-memory run — the bit-identity proof lives in
//! `tests/store_recovery.rs` and the dp-sim battery's durable-recovery
//! invariant.
//!
//! ## Knobs
//!
//! * `DP_STORE=mem|disk` — default backing for every replay an
//!   [`Execution`] performs ([`StoreMode::default_from_env`]).
//! * `DP_LAYER_EVENTS=n` — seal threshold: events per sealed layer chunk
//!   (default 4096).

pub mod checkpoint;
pub mod layer;

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dp_metrics::Metrics;
use dp_ndlog::{Engine, EngineSnapshot, HashSink, ProvenanceSink};
use dp_types::{Error, LogicalTime, NodeId, Result};

pub use self::checkpoint::DurableCheckpoint;
pub use self::layer::{Layer, SeqEvent};

use crate::exec::{Execution, Replayed};
use crate::log::{BaseEvent, BaseOp, EventLog};

/// Where an execution's replays read their base events from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreMode {
    /// Schedule straight from the in-memory [`EventLog`].
    #[default]
    Mem,
    /// Round-trip every replay through a tempdir-backed [`DurableStore`]:
    /// the log is sealed into layer files and the engine is fed from the
    /// merged on-disk read path. Slower, but every replay then exercises
    /// the codec, the seal path, and the layer-stack merge.
    Disk,
}

impl StoreMode {
    /// The process-wide default: the `DP_STORE` environment variable
    /// (`mem` or `disk`), read once, defaulting to [`StoreMode::Mem`].
    pub fn default_from_env() -> StoreMode {
        static MODE: std::sync::OnceLock<StoreMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("DP_STORE").as_deref() {
            Ok("disk") => StoreMode::Disk,
            _ => StoreMode::Mem,
        })
    }
}

/// The seal threshold: events per sealed layer chunk. `DP_LAYER_EVENTS`,
/// read once; defaults to 4096, floored at 1.
pub fn default_layer_events() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("DP_LAYER_EVENTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(4096, |n| n.max(1))
    })
}

/// Starts a wall-clock timer when the process-wide metrics registry is
/// enabled. Store metering always goes through [`Metrics::global`]: a
/// store has no per-execution identity (temp stores come and go per
/// replay), so its gauges describe "the store this process touched last"
/// and its histograms accumulate across all of them.
fn store_timer() -> Option<std::time::Instant> {
    Metrics::global()
        .is_enabled()
        .then(std::time::Instant::now)
}

/// An owned scratch directory under the system temp dir, removed on drop.
///
/// Directories are named `dp-store-{pid}-{n}` so stray ones from killed
/// processes are identifiable (and cleaned by `scripts/check.sh`).
#[derive(Debug)]
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new() -> Result<TempDir> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("dp-store-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .map_err(|e| Error::Engine(format!("creating temp store {}: {e}", path.display())))?;
        Ok(TempDir { path })
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A layered durable store: sealed layer files plus durable checkpoints
/// in one directory.
///
/// Layers are immutable once sealed; the store only ever appends new
/// files. [`DurableStore::open`] rebuilds the whole in-memory view from
/// the directory alone — that *is* the recovery path, and every file is
/// checksum-verified eagerly so corruption surfaces as a typed
/// [`Error::Codec`](dp_types::Error::Codec) before any event replays.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    layers: Vec<Layer>,
    checkpoints: Vec<DurableCheckpoint>,
    next_seq: u64,
    _temp: Option<TempDir>,
}

impl DurableStore {
    /// Opens (or initializes) the store at `dir`, loading and verifying
    /// every layer and checkpoint file found there.
    pub fn open(dir: &Path) -> Result<DurableStore> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Engine(format!("creating store dir {}: {e}", dir.display())))?;
        let mut layers = Vec::new();
        let mut checkpoints = Vec::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| Error::Engine(format!("listing store dir {}: {e}", dir.display())))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| Error::Engine(format!("listing store dir: {e}")))?;
            let path = entry.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("dply") => layers.push(layer::read_layer(&path)?),
                Some("dpck") => checkpoints.push(checkpoint::read_checkpoint(&path)?),
                _ => {}
            }
        }
        layers.sort_by_key(|l| l.first_seq);
        checkpoints.sort_by_key(|c| c.cut);
        let next_seq = layers
            .iter()
            .flat_map(|l| l.events.iter().map(|s| s.seq))
            .max()
            .map_or(0, |s| s + 1);
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            layers,
            checkpoints,
            next_seq,
            _temp: None,
        })
    }

    /// A fresh store in an owned scratch directory, removed when the
    /// store is dropped.
    pub fn temp() -> Result<DurableStore> {
        let guard = TempDir::new()?;
        let mut store = DurableStore::open(&guard.path)?;
        store._temp = Some(guard);
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Seals `events` — the next run of the log's replay order — into
    /// immutable layer files, one per node touched. Returns the number of
    /// files written. Events receive consecutive global sequence numbers
    /// continuing from the previous seal.
    pub fn seal_events(&mut self, events: &[BaseEvent]) -> Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let timer = store_timer();
        let base = self.next_seq;
        let mut by_node: BTreeMap<NodeId, Vec<SeqEvent>> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            by_node.entry(e.node.clone()).or_default().push(SeqEvent {
                seq: base + i as u64,
                event: e.clone(),
            });
        }
        let files = by_node.len();
        for (node, evs) in by_node {
            let path = self.dir.join(format!("layer-{:020}.dply", evs[0].seq));
            self.layers.push(layer::write_layer(&path, &node, &evs)?);
        }
        self.layers.sort_by_key(|l| l.first_seq);
        self.next_seq = base + events.len() as u64;
        if let Some(t0) = timer {
            let m = Metrics::global();
            m.time_histogram(
                "dp_store_seal_seconds",
                "Latency of sealing one event chunk into layer files.",
            )
            .observe_duration(t0.elapsed());
            m.counter(
                "dp_store_sealed_events_total",
                "Base events sealed into durable layers.",
            )
            .add(events.len() as u64);
            self.observe_sizes(m);
        }
        Ok(files)
    }

    /// Writes a durable checkpoint file and registers it with the store.
    pub fn add_checkpoint(
        &mut self,
        cut: LogicalTime,
        digest: u64,
        count: u64,
        snapshot: EngineSnapshot,
    ) -> Result<()> {
        let mut cp = DurableCheckpoint {
            cut,
            digest,
            count,
            snapshot,
            file_bytes: 0,
        };
        let timer = store_timer();
        let path = self.dir.join(checkpoint::checkpoint_file_name(cut));
        cp.file_bytes = checkpoint::write_checkpoint(&path, &cp)?;
        self.checkpoints.push(cp);
        self.checkpoints.sort_by_key(|c| c.cut);
        if let Some(t0) = timer {
            let m = Metrics::global();
            m.time_histogram(
                "dp_store_checkpoint_seconds",
                "Latency of writing one durable checkpoint file.",
            )
            .observe_duration(t0.elapsed());
            self.observe_sizes(m);
        }
        Ok(())
    }

    /// Folds the store's current file counts and on-disk bytes into the
    /// size gauges. Called after every seal and checkpoint, so a scrape
    /// mid-spill watches the store grow.
    fn observe_sizes(&self, m: &Metrics) {
        m.gauge("dp_store_layer_files", "Sealed layer files in the store.")
            .set(self.layer_count() as i64);
        m.gauge("dp_store_layer_bytes", "On-disk bytes across sealed layer files.")
            .set(self.layer_bytes() as i64);
        m.gauge(
            "dp_store_checkpoint_files",
            "Durable checkpoint files in the store.",
        )
        .set(self.checkpoint_count() as i64);
        m.gauge(
            "dp_store_checkpoint_bytes",
            "On-disk bytes across durable checkpoint files.",
        )
        .set(self.checkpoint_bytes() as i64);
    }

    /// The newest durable checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Option<&DurableCheckpoint> {
        self.checkpoints.last()
    }

    /// The newest durable checkpoint with `cut <= t` (the same inclusive
    /// boundary as [`crate::CheckpointStore::latest_at_or_before`]).
    pub fn latest_checkpoint_at_or_before(&self, t: LogicalTime) -> Option<&DurableCheckpoint> {
        self.checkpoints.iter().rev().find(|c| c.cut <= t)
    }

    /// Number of sealed layer files.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of durable checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Total events across all sealed layers.
    pub fn event_count(&self) -> u64 {
        self.layers.iter().map(|l| l.events.len() as u64).sum()
    }

    /// Real on-disk bytes across all sealed layer files.
    pub fn layer_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.file_bytes).sum()
    }

    /// Real on-disk bytes across all checkpoint files.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.file_bytes).sum()
    }

    /// Real on-disk bytes of the whole store.
    pub fn total_bytes(&self) -> u64 {
        self.layer_bytes() + self.checkpoint_bytes()
    }

    /// Schedules the merged layer stack into an engine, restoring the
    /// global replay order with a k-way merge on `(due, seq)`. Only
    /// events with `due > after` (if given) and `due <= until` (if given)
    /// are scheduled. Returns how many were.
    pub fn schedule_into<S: ProvenanceSink>(
        &self,
        engine: &mut Engine<S>,
        after: Option<LogicalTime>,
        until: Option<LogicalTime>,
    ) -> Result<u64> {
        // Each layer is a strictly increasing (due, seq) run, so a heap
        // seeded with every layer's first in-range event and advanced one
        // record at a time yields the unique global order.
        let mut pos: Vec<usize> = Vec::with_capacity(self.layers.len());
        let mut heap: BinaryHeap<Reverse<(LogicalTime, u64, usize)>> = BinaryHeap::new();
        for (li, l) in self.layers.iter().enumerate() {
            let start = match after {
                Some(cut) => l.events.partition_point(|s| s.event.due <= cut),
                None => 0,
            };
            pos.push(start);
            if let Some(s) = l.events.get(start) {
                heap.push(Reverse((s.event.due, s.seq, li)));
            }
        }
        let mut scheduled = 0u64;
        while let Some(Reverse((due, _seq, li))) = heap.pop() {
            if let Some(t) = until {
                if due > t {
                    break;
                }
            }
            let s = &self.layers[li].events[pos[li]];
            match s.event.op {
                BaseOp::Insert => {
                    engine.schedule_insert(s.event.due, s.event.node.clone(), s.event.tuple.clone())?
                }
                BaseOp::Delete => {
                    engine.schedule_delete(s.event.due, s.event.node.clone(), s.event.tuple.clone())?
                }
            }
            scheduled += 1;
            pos[li] += 1;
            if let Some(next) = self.layers[li].events.get(pos[li]) {
                heap.push(Reverse((next.event.due, next.seq, li)));
            }
        }
        Ok(scheduled)
    }

    /// Rebuilds an in-memory [`EventLog`] from the merged layer stack —
    /// the full-recovery path for tooling that needs a mutable log again
    /// (the aged cut is floored at the newest checkpoint's cut).
    pub fn load_log(&self) -> EventLog {
        let mut merged: Vec<&SeqEvent> = self.layers.iter().flat_map(|l| &l.events).collect();
        merged.sort_by_key(|s| (s.event.due, s.seq));
        let mut log = EventLog::new();
        for s in merged {
            log.push(s.event.clone());
        }
        if let Some(cp) = self.latest_checkpoint() {
            // Nothing below the checkpoint cut is ever dropped from the
            // layers, but the horizon floor must survive recovery too.
            if log.is_empty() {
                log.retain_after(cp.cut);
            }
        }
        log
    }
}

impl Execution {
    /// Seals this execution's entire log into `store` (chunks of
    /// [`default_layer_events`]) and, when `checkpoint_every > 0`, writes
    /// durable checkpoints every `checkpoint_every` base events — each
    /// carrying the engine snapshot *and* the provenance-stream digest at
    /// its cut, captured by a single checkpointing reference replay.
    ///
    /// Only **closed** checkpoint intervals are durably cut; the newest
    /// interval is still open when the process dies, so it is the tail —
    /// sealed in the layers but folded past the last checkpoint without a
    /// snapshot, exactly as the live process would have kept running.
    ///
    /// Returns the reference `(digest, count)`: the stream digest of this
    /// checkpointing process having run the whole log, crash-free. The
    /// engine's provenance stream depends on where snapshot cuts quiesce
    /// the cascade (a cut drains in-flight derived work that an uncut run
    /// would interleave with later base events), so *this* is the digest
    /// recovery must reproduce bit-for-bit; with `checkpoint_every == 0`
    /// no cuts are taken and the reference equals
    /// [`Execution::stream_digest`].
    pub fn spill_into(
        &self,
        store: &mut DurableStore,
        checkpoint_every: usize,
    ) -> Result<(u64, u64)> {
        let events = self.log.events();
        for chunk in events.chunks(default_layer_events()) {
            store.seal_events(chunk)?;
        }
        let mut engine = Engine::new(Arc::clone(&self.program), HashSink::default());
        self.configure(&mut engine);
        let mut i = 0;
        if checkpoint_every > 0 {
            while i < events.len() {
                let end = crate::exec::chunk_end(&events, i, checkpoint_every);
                if end == events.len() {
                    break; // the newest interval is still open: tail, not a cut
                }
                for e in &events[i..end] {
                    match e.op {
                        BaseOp::Insert => {
                            engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?
                        }
                        BaseOp::Delete => {
                            engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?
                        }
                    }
                }
                engine.run()?;
                store.add_checkpoint(
                    events[end - 1].due,
                    engine.sink().digest(),
                    engine.sink().count,
                    engine.snapshot()?,
                )?;
                i = end;
            }
        }
        for e in &events[i..] {
            match e.op {
                BaseOp::Insert => engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?,
                BaseOp::Delete => engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?,
            }
        }
        engine.run()?;
        let sink = engine.into_sink();
        Ok((sink.digest(), sink.count))
    }

    /// [`Execution::spill_into`] against a fresh tempdir-backed store.
    /// Returns the store and the crash-free reference `(digest, count)`.
    pub fn spill_temp(&self, checkpoint_every: usize) -> Result<(DurableStore, (u64, u64))> {
        let mut store = DurableStore::temp()?;
        let reference = self.spill_into(&mut store, checkpoint_every)?;
        Ok((store, reference))
    }

    /// The recovery digest: restores the newest durable checkpoint (with
    /// its resumable digest state), replays the on-disk tail, and returns
    /// the final `(digest, count)` of the provenance stream.
    ///
    /// This is the crash-recovery proof obligation: the result must be
    /// bit-identical to the crash-free reference digest
    /// [`Execution::spill_into`] returned — the stream the same
    /// checkpointing process produces when it is never killed. With no
    /// durable checkpoints the whole layer stack replays from scratch and
    /// the reference is [`Execution::stream_digest`] itself. Both hold at
    /// any shard/thread/config setting.
    pub fn recovered_stream_digest(&self, store: &DurableStore) -> Result<(u64, u64)> {
        let timer = store_timer();
        let mut engine = match store.latest_checkpoint() {
            Some(cp) => {
                let mut engine = Engine::restore(
                    Arc::clone(&self.program),
                    cp.snapshot.clone(),
                    HashSink::resume(cp.digest, cp.count),
                )?;
                self.configure(&mut engine);
                store.schedule_into(&mut engine, Some(cp.cut), None)?;
                engine
            }
            None => {
                let mut engine = Engine::new(Arc::clone(&self.program), HashSink::default());
                self.configure(&mut engine);
                store.schedule_into(&mut engine, None, None)?;
                engine
            }
        };
        engine.run()?;
        let sink = engine.into_sink();
        if let Some(t0) = timer {
            Metrics::global()
                .time_histogram(
                    "dp_store_recovery_seconds",
                    "Latency of checkpoint restore plus on-disk tail replay.",
                )
                .observe_duration(t0.elapsed());
        }
        Ok((sink.digest(), sink.count))
    }

    /// Replays from the durable store for provenance queries at `from`:
    /// newest checkpoint with `cut <= from` plus the on-disk tail. The
    /// recorded provenance covers the tail only, exactly like
    /// [`Execution::replay_from_checkpoint`].
    pub fn replay_from_durable(
        &self,
        store: &DurableStore,
        from: LogicalTime,
    ) -> Result<Replayed> {
        let mut engine = match store.latest_checkpoint_at_or_before(from) {
            Some(cp) => {
                let mut engine = Engine::restore(
                    Arc::clone(&self.program),
                    cp.snapshot.clone(),
                    self.recorder(),
                )?;
                self.configure(&mut engine);
                store.schedule_into(&mut engine, Some(cp.cut), None)?;
                engine
            }
            None => {
                let mut engine = Engine::new(Arc::clone(&self.program), self.recorder());
                self.configure(&mut engine);
                store.schedule_into(&mut engine, None, None)?;
                engine
            }
        };
        engine.run()?;
        Ok(Replayed { engine })
    }

    /// Schedules this execution's base events into `engine`, honoring the
    /// execution's [`StoreMode`]: straight from memory, or round-tripped
    /// through a tempdir-backed durable store so the codec, seal path,
    /// and layer-stack merge sit on every replay's read path.
    pub(crate) fn schedule_log<S: ProvenanceSink>(
        &self,
        engine: &mut Engine<S>,
        until: Option<LogicalTime>,
    ) -> Result<()> {
        match self.store_mode {
            StoreMode::Mem => self.log.schedule_into(engine, until),
            StoreMode::Disk => {
                let mut store = DurableStore::temp()?;
                let events = self.log.events();
                for chunk in events.chunks(default_layer_events()) {
                    store.seal_events(chunk)?;
                }
                store.schedule_into(engine, None, until)?;
                Ok(())
            }
        }
    }
}
