//! Sealed, immutable on-disk layer files.
//!
//! A layer file holds the base events of **one node** over one due-time
//! range, in replay order, mirroring how neon's pageserver seals an
//! ephemeral open layer into immutable delta layers keyed by (key range,
//! LSN range) — here the key is the node and the "LSN" is the logical due
//! time. Once written a layer is never modified; compaction is simply
//! sealing more layers.
//!
//! ## File format (`DPLY` version 1)
//!
//! ```text
//! "DPLY" u16=1              header (magic + version)
//! str    node               the node all events belong to
//! u64    first_seq          global arrival index of the first record
//! u64    min_due  u64 max_due
//! u32    count
//! count × { u64 seq, u64 due, u8 op, tuple }
//! u64    fnv64(everything above)
//! ```
//!
//! `seq` is each event's position in the log's replay order, assigned at
//! seal time. Due ranges of different layers may overlap (per node and
//! across nodes), so reads restore the global replay order with a k-way
//! merge on `(due, seq)` — exactly the key the in-memory log sorts by, so
//! a read through any layer arrangement is bit-identical to an in-memory
//! replay. The whole file is checksummed and eagerly verified on open:
//! truncation and bit rot surface as [`Error::Codec`] before any event is
//! replayed, never as a panic mid-recovery.

use std::path::{Path, PathBuf};

use dp_types::codec::{fnv64, Dec, Enc};
use dp_types::{Error, LogicalTime, NodeId, Result};

use crate::log::{BaseEvent, BaseOp};

/// Layer-file magic.
pub const LAYER_MAGIC: &[u8; 4] = b"DPLY";
/// Current layer-format version.
pub const LAYER_VERSION: u16 = 1;

/// One event as stored in a layer, tagged with its global replay position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqEvent {
    /// Position in the log's replay order (the merge key's tiebreaker).
    pub seq: u64,
    /// The event itself.
    pub event: BaseEvent,
}

/// A sealed layer loaded back into memory, checksum-verified.
#[derive(Clone, Debug)]
pub struct Layer {
    /// The node every event in this layer belongs to.
    pub node: NodeId,
    /// Smallest due time in the layer.
    pub min_due: LogicalTime,
    /// Largest due time in the layer.
    pub max_due: LogicalTime,
    /// First global sequence number in the layer.
    pub first_seq: u64,
    /// The events, in `(due, seq)` order.
    pub events: Vec<SeqEvent>,
    /// Size of the layer file in bytes.
    pub file_bytes: u64,
    /// Where the layer was read from (or written to).
    pub path: PathBuf,
}

fn io_err(context: &'static str, path: &Path, e: std::io::Error) -> Error {
    Error::Engine(format!("{context} {}: {e}", path.display()))
}

/// Encodes one node's slice of the replay order and writes it to `path`.
/// `events` must be non-empty, all on one node, in `(due, seq)` order.
pub fn write_layer(path: &Path, node: &NodeId, events: &[SeqEvent]) -> Result<Layer> {
    assert!(!events.is_empty(), "a layer holds at least one event");
    debug_assert!(events.iter().all(|e| e.event.node == *node));
    debug_assert!(events
        .windows(2)
        .all(|w| (w[0].event.due, w[0].seq) < (w[1].event.due, w[1].seq)));
    let mut e = Enc::new();
    e.header(LAYER_MAGIC, LAYER_VERSION);
    e.str(node.as_str());
    e.u64(events[0].seq);
    e.u64(events.iter().map(|s| s.event.due).min().unwrap_or(0));
    e.u64(events.iter().map(|s| s.event.due).max().unwrap_or(0));
    e.u32(events.len() as u32);
    for s in events {
        e.u64(s.seq);
        e.u64(s.event.due);
        e.u8(match s.event.op {
            BaseOp::Insert => 0,
            BaseOp::Delete => 1,
        });
        e.tuple(&s.event.tuple);
    }
    let sum = fnv64(e.bytes());
    e.u64(sum);
    let bytes = e.into_bytes();
    std::fs::write(path, &bytes).map_err(|err| io_err("writing layer", path, err))?;
    Ok(Layer {
        node: node.clone(),
        min_due: events.first().map_or(0, |s| s.event.due),
        max_due: events.iter().map(|s| s.event.due).max().unwrap_or(0),
        first_seq: events[0].seq,
        events: events.to_vec(),
        file_bytes: bytes.len() as u64,
        path: path.to_path_buf(),
    })
}

/// Reads a layer back, verifying the whole-file checksum before decoding
/// a single record.
pub fn read_layer(path: &Path) -> Result<Layer> {
    let bytes = std::fs::read(path).map_err(|err| io_err("reading layer", path, err))?;
    if bytes.len() < 8 {
        return Err(Error::Codec {
            context: "layer file",
            detail: format!("{} is too short to hold a checksum", path.display()),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut d = Dec::new(tail);
    let stored = d.u64("layer checksum")?;
    if fnv64(body) != stored {
        return Err(Error::Codec {
            context: "layer file",
            detail: format!("checksum mismatch in {}", path.display()),
        });
    }
    let mut d = Dec::new(body);
    d.header(LAYER_MAGIC, LAYER_VERSION)?;
    let node = NodeId::new(d.str("layer node")?);
    let first_seq = d.u64("layer first-seq")?;
    let min_due = d.u64("layer min-due")?;
    let max_due = d.u64("layer max-due")?;
    let count = d.u32("layer record count")?;
    let mut events = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let seq = d.u64("record seq")?;
        let due = d.u64("record due")?;
        let op = match d.u8("record op")? {
            0 => BaseOp::Insert,
            1 => BaseOp::Delete,
            other => {
                return Err(Error::Codec {
                    context: "record op",
                    detail: format!("expected 0 or 1, found {other}"),
                })
            }
        };
        let tuple = d.tuple()?;
        events.push(SeqEvent {
            seq,
            event: BaseEvent {
                due,
                node: node.clone(),
                tuple,
                op,
            },
        });
    }
    if !d.is_exhausted() {
        return Err(Error::Codec {
            context: "layer file",
            detail: format!("{} trailing byte(s) before the checksum", d.remaining()),
        });
    }
    Ok(Layer {
        node,
        min_due,
        max_due,
        first_seq,
        events,
        file_bytes: bytes.len() as u64,
        path: path.to_path_buf(),
    })
}
