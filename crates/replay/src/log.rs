//! The base-event log.
//!
//! Following the paper's "query-time based approach" (Section 5), the
//! logging engine writes down **base events only** — external inputs and
//! configuration changes — and the replay engine reconstructs all
//! derivations (and hence the provenance graph) deterministically at query
//! time. This favors runtime performance: diagnostic queries take longer,
//! but they are rare.

use dp_types::{LogicalTime, NodeId, Result, Tuple};

/// Whether a base event inserts or deletes its tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseOp {
    /// Base-tuple insertion.
    Insert,
    /// Base-tuple deletion (the paper models deletions as special events,
    /// keeping the log append-only).
    Delete,
}

/// One logged base event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseEvent {
    /// Earliest logical time the event may execute.
    pub due: LogicalTime,
    /// Node the tuple lives on.
    pub node: NodeId,
    /// The tuple.
    pub tuple: Tuple,
    /// Insert or delete.
    pub op: BaseOp,
}

/// An append-only log of base events, kept sorted by `due` (stable for
/// equal times, preserving arrival order — determinism again).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<BaseEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The events in replay order.
    pub fn events(&self) -> &[BaseEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The due time of the last event (0 for an empty log).
    pub fn horizon(&self) -> LogicalTime {
        self.events.last().map_or(0, |e| e.due)
    }

    /// Appends an event, keeping the log sorted by `due` (stable).
    pub fn push(&mut self, event: BaseEvent) {
        let pos = self.events.partition_point(|e| e.due <= event.due);
        self.events.insert(pos, event);
    }

    /// Convenience: log an insertion.
    pub fn insert(&mut self, due: LogicalTime, node: impl Into<NodeId>, tuple: Tuple) {
        self.push(BaseEvent {
            due,
            node: node.into(),
            tuple,
            op: BaseOp::Insert,
        });
    }

    /// Convenience: log a deletion.
    pub fn delete(&mut self, due: LogicalTime, node: impl Into<NodeId>, tuple: Tuple) {
        self.push(BaseEvent {
            due,
            node: node.into(),
            tuple,
            op: BaseOp::Delete,
        });
    }

    /// Drops every event with `due <= cut`, returning how many were
    /// removed.
    ///
    /// This is the aging mechanism of Section 6.5 ("the logs do not
    /// necessarily have to be maintained for an extensive period of time,
    /// and old entries can be gradually aged out"): once a checkpoint
    /// covers a prefix of the log, the prefix can be discarded and replay
    /// resumes from the checkpoint instead
    /// ([`crate::Execution::age_out`]).
    pub fn retain_after(&mut self, cut: LogicalTime) -> usize {
        let before = self.events.len();
        self.events.retain(|e| e.due > cut);
        before - self.events.len()
    }

    /// Feeds the whole log (or the prefix with `due <= until`, if given)
    /// into an engine's schedule.
    pub fn schedule_into<S: dp_ndlog::ProvenanceSink>(
        &self,
        engine: &mut dp_ndlog::Engine<S>,
        until: Option<LogicalTime>,
    ) -> Result<()> {
        for e in &self.events {
            if let Some(t) = until {
                if e.due > t {
                    break;
                }
            }
            match e.op {
                BaseOp::Insert => engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?,
                BaseOp::Delete => engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::tuple;

    #[test]
    fn log_stays_sorted_and_stable() {
        let mut log = EventLog::new();
        log.insert(10, "a", tuple!("t", 1));
        log.insert(5, "a", tuple!("t", 2));
        log.insert(10, "a", tuple!("t", 3));
        log.delete(7, "a", tuple!("t", 2));
        let dues: Vec<_> = log.events().iter().map(|e| e.due).collect();
        assert_eq!(dues, [5, 7, 10, 10]);
        // Stable: t=1 logged before t=3 at the same due.
        assert_eq!(log.events()[2].tuple, tuple!("t", 1));
        assert_eq!(log.events()[3].tuple, tuple!("t", 3));
        assert_eq!(log.horizon(), 10);
    }
}
