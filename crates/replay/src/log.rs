//! The base-event log.
//!
//! Following the paper's "query-time based approach" (Section 5), the
//! logging engine writes down **base events only** — external inputs and
//! configuration changes — and the replay engine reconstructs all
//! derivations (and hence the provenance graph) deterministically at query
//! time. This favors runtime performance: diagnostic queries take longer,
//! but they are rare.
//!
//! Appends are O(1): the log buffers arrivals in arrival order and
//! restores the replay order — stable sort by `due`, arrival order within
//! a due — lazily, either in place ([`EventLog::normalize`]) or in the
//! [`EventsView`] a read of a still-dirty log returns. The naive
//! alternative (binary-search + `Vec::insert` per event) is O(n) per
//! out-of-order arrival, which turned the reordered-install schedules
//! dp-sim generates into quadratic ingest; [`EventLog::reorder_effort`]
//! counts ordering work so the regression fence asserts effort, not wall
//! time.

use std::ops::Deref;

use dp_types::{LogicalTime, NodeId, Result, Tuple};

/// Whether a base event inserts or deletes its tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseOp {
    /// Base-tuple insertion.
    Insert,
    /// Base-tuple deletion (the paper models deletions as special events,
    /// keeping the log append-only).
    Delete,
}

/// One logged base event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseEvent {
    /// Earliest logical time the event may execute.
    pub due: LogicalTime,
    /// Node the tuple lives on.
    pub node: NodeId,
    /// The tuple.
    pub tuple: Tuple,
    /// Insert or delete.
    pub op: BaseOp,
}

/// An append-only log of base events, read back sorted by `due` (stable
/// for equal times, preserving arrival order — determinism again).
///
/// Events are kept in arrival order internally; the sorted replay order is
/// restored lazily. A stable sort preserves relative order of equal dues,
/// and the buffer's order *is* arrival order (inductively: it holds for
/// appends, and every sort preserves it within a due), so the lazy path
/// reads back exactly what eager insertion-sort produced.
#[derive(Clone, Debug)]
pub struct EventLog {
    events: Vec<BaseEvent>,
    /// True when `events` is already in replay order.
    sorted: bool,
    /// Largest `due` ever pushed (not reduced by aging).
    max_due: LogicalTime,
    /// Largest cut ever passed to [`EventLog::retain_after`]. The horizon
    /// never regresses below this, even when aging empties the log.
    aged_cut: LogicalTime,
    /// Elements moved while maintaining replay order (one per sorted
    /// element per in-place normalize). An effort counter for regression
    /// tests: a linear-ish ingest keeps this O(n), the old per-push
    /// `Vec::insert` scheme would have counted O(n²) shifts.
    effort: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            events: Vec::new(),
            sorted: true,
            max_due: 0,
            aged_cut: 0,
            effort: 0,
        }
    }
}

/// The events of an [`EventLog`] in replay order.
///
/// Borrows the log's buffer when it is already ordered; for a log with
/// unsorted appends still pending, the view owns a sorted copy instead, so
/// reads never require `&mut` access. Dereferences to `[BaseEvent]`.
#[derive(Clone, Debug)]
pub struct EventsView<'a>(ViewInner<'a>);

#[derive(Clone, Debug)]
enum ViewInner<'a> {
    Borrowed(&'a [BaseEvent]),
    Owned(Vec<BaseEvent>),
}

impl Deref for EventsView<'_> {
    type Target = [BaseEvent];

    fn deref(&self) -> &[BaseEvent] {
        match &self.0 {
            ViewInner::Borrowed(s) => s,
            ViewInner::Owned(v) => v,
        }
    }
}

impl AsRef<[BaseEvent]> for EventsView<'_> {
    fn as_ref(&self) -> &[BaseEvent] {
        self
    }
}

impl PartialEq for EventsView<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for EventsView<'_> {}

impl PartialEq<[BaseEvent]> for EventsView<'_> {
    fn eq(&self, other: &[BaseEvent]) -> bool {
        **self == *other
    }
}

impl<'a, 'b> IntoIterator for &'b EventsView<'a> {
    type Item = &'b BaseEvent;
    type IntoIter = std::slice::Iter<'b, BaseEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

fn sort_events(events: &mut [BaseEvent]) {
    events.sort_by_key(|e| e.due); // sort_by_key is stable: arrival order within a due
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The events in replay order.
    ///
    /// Borrows when the log is already ordered (always true right after
    /// [`EventLog::normalize`], or when every append arrived in order);
    /// otherwise returns an owned sorted copy. Mutating paths should
    /// normalize first so repeated reads stay allocation-free.
    pub fn events(&self) -> EventsView<'_> {
        if self.sorted {
            EventsView(ViewInner::Borrowed(&self.events))
        } else {
            let mut copy = self.events.clone();
            sort_events(&mut copy);
            EventsView(ViewInner::Owned(copy))
        }
    }

    /// Restores replay order in place, making subsequent [`EventLog::events`]
    /// reads borrow. A no-op on an already-ordered log.
    pub fn normalize(&mut self) {
        if !self.sorted {
            self.effort += self.events.len() as u64;
            sort_events(&mut self.events);
            self.sorted = true;
        }
    }

    /// Elements moved so far to maintain replay order (see the struct
    /// docs); asserted by regression tests instead of wall time.
    pub fn reorder_effort(&self) -> u64 {
        self.effort
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The replay horizon: the largest due time ever logged, floored at
    /// the aged-out cut.
    ///
    /// The floor is what keeps resumption clocks monotone: after
    /// [`EventLog::retain_after`] drops the *entire* tail, a horizon
    /// computed from the remaining (empty) log would regress below the
    /// checkpoint cut, and a replay resumed "at the horizon" would pick a
    /// checkpoint older than the state the log already reflects.
    pub fn horizon(&self) -> LogicalTime {
        self.aged_cut.max(self.max_due)
    }

    /// The largest cut ever aged out ([`EventLog::retain_after`]); 0 if
    /// the log was never aged.
    pub fn aged_cut(&self) -> LogicalTime {
        self.aged_cut
    }

    /// Appends an event in O(1); replay order is restored lazily.
    pub fn push(&mut self, event: BaseEvent) {
        if let Some(last) = self.events.last() {
            if event.due < last.due {
                self.sorted = false;
            }
        }
        self.max_due = self.max_due.max(event.due);
        self.events.push(event);
    }

    /// Convenience: log an insertion.
    pub fn insert(&mut self, due: LogicalTime, node: impl Into<NodeId>, tuple: Tuple) {
        self.push(BaseEvent {
            due,
            node: node.into(),
            tuple,
            op: BaseOp::Insert,
        });
    }

    /// Convenience: log a deletion.
    pub fn delete(&mut self, due: LogicalTime, node: impl Into<NodeId>, tuple: Tuple) {
        self.push(BaseEvent {
            due,
            node: node.into(),
            tuple,
            op: BaseOp::Delete,
        });
    }

    /// Drops every event with `due <= cut`, returning how many were
    /// removed. The cut is remembered: [`EventLog::horizon`] never
    /// regresses below it.
    ///
    /// This is the aging mechanism of Section 6.5 ("the logs do not
    /// necessarily have to be maintained for an extensive period of time,
    /// and old entries can be gradually aged out"): once a checkpoint
    /// covers a prefix of the log, the prefix can be discarded and replay
    /// resumes from the checkpoint instead
    /// ([`crate::Execution::age_out`]).
    pub fn retain_after(&mut self, cut: LogicalTime) -> usize {
        let before = self.events.len();
        self.events.retain(|e| e.due > cut);
        self.aged_cut = self.aged_cut.max(cut);
        before - self.events.len()
    }

    /// Feeds the whole log (or the prefix with `due <= until`, if given)
    /// into an engine's schedule.
    pub fn schedule_into<S: dp_ndlog::ProvenanceSink>(
        &self,
        engine: &mut dp_ndlog::Engine<S>,
        until: Option<LogicalTime>,
    ) -> Result<()> {
        for e in self.events().iter() {
            if let Some(t) = until {
                if e.due > t {
                    break;
                }
            }
            match e.op {
                BaseOp::Insert => engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?,
                BaseOp::Delete => engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::tuple;

    #[test]
    fn log_stays_sorted_and_stable() {
        let mut log = EventLog::new();
        log.insert(10, "a", tuple!("t", 1));
        log.insert(5, "a", tuple!("t", 2));
        log.insert(10, "a", tuple!("t", 3));
        log.delete(7, "a", tuple!("t", 2));
        let dues: Vec<_> = log.events().iter().map(|e| e.due).collect();
        assert_eq!(dues, [5, 7, 10, 10]);
        // Stable: t=1 logged before t=3 at the same due.
        assert_eq!(log.events()[2].tuple, tuple!("t", 1));
        assert_eq!(log.events()[3].tuple, tuple!("t", 3));
        assert_eq!(log.horizon(), 10);
    }

    #[test]
    fn dirty_and_normalized_reads_agree() {
        let mut log = EventLog::new();
        for i in 0..100u64 {
            log.insert(100 - i, "a", tuple!("t", i as i64));
        }
        let dirty: Vec<_> = log.events().iter().cloned().collect();
        log.normalize();
        let clean: Vec<_> = log.events().iter().cloned().collect();
        assert_eq!(dirty, clean);
        // Normalized logs hand out borrows; a second normalize is free.
        let effort = log.reorder_effort();
        log.normalize();
        assert_eq!(log.reorder_effort(), effort);
    }

    /// Regression fence for the quadratic-ingest bug: a fully reversed
    /// 50k-event ingest (the worst case for the old binary-search +
    /// `Vec::insert` scheme, which shifts O(n) elements per push and would
    /// have counted ~1.25e9 moves here) must stay linear-ish. Asserts the
    /// effort counter, not wall time, so the fence is load-independent.
    #[test]
    fn reordered_ingest_stays_out_of_the_quadratic_regime() {
        const N: u64 = 50_000;
        let mut log = EventLog::new();
        for i in 0..N {
            log.insert(N - i, "a", tuple!("e", (i % 97) as i64));
        }
        log.normalize();
        assert!(
            log.reorder_effort() <= 4 * N,
            "ordering effort {} exceeds the linear budget {}",
            log.reorder_effort(),
            4 * N
        );
        let events = log.events();
        assert_eq!(events.len(), N as usize);
        assert!(events.windows(2).all(|w| w[0].due <= w[1].due));
    }

    /// Regression fence for the horizon bug: aging out the entire log used
    /// to make `horizon()` fall back to 0, regressing below the cut.
    #[test]
    fn horizon_survives_total_age_out() {
        let mut log = EventLog::new();
        log.insert(5, "a", tuple!("t", 1));
        log.insert(9, "a", tuple!("t", 2));
        assert_eq!(log.horizon(), 9);
        let dropped = log.retain_after(9);
        assert_eq!(dropped, 2);
        assert!(log.is_empty());
        assert_eq!(log.horizon(), 9, "horizon regressed below the aged cut");
        assert_eq!(log.aged_cut(), 9);
        // Fresh appends move the horizon forward, never backward.
        log.insert(11, "a", tuple!("t", 3));
        assert_eq!(log.horizon(), 11);
    }
}
