//! Executions and deterministic replay.
//!
//! An [`Execution`] bundles a program with the base-event log of one run of
//! the primary system. Everything DiffProv needs is derived from it by
//! *replay* (Section 5): reconstructing provenance at query time,
//! re-running with a set of tuple changes applied to a **clone** of the
//! execution (Section 4.6 — changes never touch the running system), and
//! fast state reconstruction from checkpoints (Section 4.8).

use std::sync::Arc;

use dp_ndlog::{
    Engine, EngineSnapshot, HashSink, NullSink, Program, ProvEvent, ProvenanceSink, TupleChange,
};
use dp_provenance::{
    extract_tree, extract_tree_latest, reconstruct_tree, reconstruct_tree_latest, AnnotRecorder,
    AnnotationStore, GraphRecorder, ProvGraph, ProvTree,
};
use dp_metrics::Metrics;
use dp_trace::{Class, Tracer};
use dp_types::{LogicalTime, NodeId, Result, Tuple, TupleRef};

use crate::layers::StoreMode;
use crate::log::{BaseOp, EventLog};

/// Which provenance backend a replay records into: the full temporal
/// graph, or the compact annotation store with on-demand proof-tree
/// reconstruction. Both answer `query`/`query_at` with byte-identical
/// trees; they differ in memory footprint and query latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProvBackend {
    /// Record the append-only [`ProvGraph`]; queries extract trees.
    #[default]
    Graph,
    /// Record per-episode annotations; queries reconstruct trees by
    /// re-running rule bodies top-down.
    Annot,
}

impl ProvBackend {
    /// The process-wide default: the `DP_PROV` environment variable
    /// (`graph` or `annot`), read once, defaulting to [`ProvBackend::Graph`].
    pub fn default_from_env() -> ProvBackend {
        static BACKEND: std::sync::OnceLock<ProvBackend> = std::sync::OnceLock::new();
        *BACKEND.get_or_init(|| match std::env::var("DP_PROV").as_deref() {
            Ok("annot") => ProvBackend::Annot,
            _ => ProvBackend::Graph,
        })
    }
}

/// The sink a replaying engine records into: one of the two provenance
/// backends behind a single [`ProvenanceSink`] face, so `Engine` stays
/// monomorphic over the replay layer.
pub enum BackendRecorder {
    /// Full-graph recording.
    Graph(GraphRecorder),
    /// Compact annotation recording.
    Annot(AnnotRecorder),
}

impl ProvenanceSink for BackendRecorder {
    fn record(&mut self, event: ProvEvent) {
        match self {
            BackendRecorder::Graph(g) => g.record(event),
            BackendRecorder::Annot(a) => a.record(event),
        }
    }

    fn record_batch(&mut self, events: &mut Vec<ProvEvent>) {
        match self {
            BackendRecorder::Graph(g) => g.record_batch(events),
            BackendRecorder::Annot(a) => a.record_batch(events),
        }
    }
}

/// A program plus the logged base events of one run.
#[derive(Clone)]
pub struct Execution {
    /// The system model.
    pub program: Arc<Program>,
    /// The logged base events.
    pub log: EventLog,
    /// When true, every engine this execution builds evaluates joins with
    /// the naive nested-loop reference path instead of the hash indexes.
    /// Both paths are observably identical (same event stream, same
    /// fixpoint); the flag exists for differential checks and benchmarks.
    pub naive_join: bool,
    /// When true, every engine this execution builds fires rules tuple-at-
    /// a-time instead of batching same-timestamp deltas. Like
    /// `naive_join`, both modes are observably identical; the flag exists
    /// for differential checks and benchmarks.
    pub unbatched: bool,
    /// When true, every engine this execution builds answers
    /// `prefix_contains`-constrained join steps with a full scan instead of
    /// the prefix trie. Like the other flags, both modes are observably
    /// identical; the flag exists for differential checks and benchmarks.
    pub no_trie: bool,
    /// Worker threads for the engines this execution builds. `0` (the
    /// default) leaves the engine's own default in place — the `DP_THREADS`
    /// environment variable, or the machine's available parallelism. Like
    /// the other flags, every setting replays the identical provenance
    /// stream; `1` pins the serial reference path for differential checks.
    pub threads: usize,
    /// Shard count for the engines this execution builds. `0` (the
    /// default) leaves the engine's own default in place — the `DP_SHARDS`
    /// environment variable, or 1. Like the other flags, every setting
    /// replays the identical provenance stream; `1` pins the serial
    /// single-universe engine for differential checks.
    pub shards: usize,
    /// Tracer threaded into every engine, recorder, and tree extraction
    /// this execution performs (disabled by default, in which case each
    /// engine falls back to its own `DP_TRACE` default). Cloned freely —
    /// clones share one event stream, so the UPDATETREE replays of a
    /// cloned execution land in the same trace as the original's.
    pub tracer: Tracer,
    /// Metrics registry threaded into every engine this execution builds
    /// (disabled by default, in which case each engine falls back to the
    /// process-wide [`Metrics::global`] default, i.e. the `DP_METRICS`
    /// environment variable). Metrics are strictly passive observers —
    /// every setting replays the identical provenance stream.
    pub metrics: Metrics,
    /// The provenance backend every replay of this execution records into.
    /// Defaults to the `DP_PROV` environment variable (see
    /// [`ProvBackend::default_from_env`]). Both backends answer queries
    /// with byte-identical trees; graph-dependent callers (whole-graph
    /// statistics, episode enumeration) should pin [`ProvBackend::Graph`].
    pub provenance_backend: ProvBackend,
    /// Where this execution's replays read their base events from.
    /// Defaults to the `DP_STORE` environment variable (see
    /// [`StoreMode::default_from_env`]). [`StoreMode::Disk`] round-trips
    /// every replay through a sealed on-disk layer stack; both modes
    /// replay the identical provenance stream.
    pub store_mode: StoreMode,
}

/// The outcome of a replay: a quiescent engine plus the provenance
/// recorded during re-execution (graph or annotation store, depending on
/// the execution's backend).
pub struct Replayed {
    /// The engine at quiescence (final state; usable for existence checks).
    pub engine: Engine<BackendRecorder>,
}

impl Replayed {
    /// The recorded provenance graph.
    ///
    /// # Panics
    ///
    /// Panics when the replay recorded into the annotation backend
    /// (`DP_PROV=annot`): there is no graph to return. Callers that need
    /// whole-graph access must pin `provenance_backend = ProvBackend::Graph`
    /// on their execution.
    pub fn graph(&self) -> &ProvGraph {
        match self.engine.sink() {
            BackendRecorder::Graph(g) => &g.graph,
            BackendRecorder::Annot(_) => panic!(
                "replay recorded into the annotation backend (DP_PROV=annot); \
                 pin ProvBackend::Graph on the execution for graph access"
            ),
        }
    }

    /// The recorded annotation store.
    ///
    /// # Panics
    ///
    /// Panics when the replay recorded into the graph backend.
    pub fn annotations(&self) -> &AnnotationStore {
        match self.engine.sink() {
            BackendRecorder::Annot(a) => &a.store,
            BackendRecorder::Graph(_) => panic!(
                "replay recorded into the graph backend; \
                 pin ProvBackend::Annot on the execution for annotation access"
            ),
        }
    }

    /// The logical time at quiescence.
    pub fn now(&self) -> LogicalTime {
        self.engine.now()
    }

    /// True if the located tuple is present in the final state.
    pub fn exists(&self, node: &NodeId, tuple: &Tuple) -> bool {
        self.engine.lookup(node, tuple).is_some()
    }

    /// The provenance tree of `root` as of the final state — extracted
    /// from the graph, or reconstructed from annotations; the two are
    /// byte-identical (see `annot_differential.rs`).
    pub fn query(&self, root: &TupleRef) -> Option<ProvTree> {
        let now = self.now();
        let span = self.extract_span(now);
        let timer = self.extract_timer();
        let tree = match self.engine.sink() {
            BackendRecorder::Graph(g) => extract_tree(&g.graph, root, now),
            BackendRecorder::Annot(a) => reconstruct_tree(&a.store, root, now),
        };
        self.observe_extract(timer, tree.as_ref());
        close_extract_span(span, now, tree.as_ref());
        tree
    }

    /// The provenance tree of `root` as of `at` (temporal query; tolerates
    /// tuples that have since disappeared).
    pub fn query_at(&self, root: &TupleRef, at: LogicalTime) -> Option<ProvTree> {
        let span = self.extract_span(at);
        let timer = self.extract_timer();
        let tree = match self.engine.sink() {
            BackendRecorder::Graph(g) => extract_tree_latest(&g.graph, root, at),
            BackendRecorder::Annot(a) => reconstruct_tree_latest(&a.store, root, at),
        };
        self.observe_extract(timer, tree.as_ref());
        close_extract_span(span, at, tree.as_ref());
        tree
    }

    /// The exposition label for the backend this replay recorded into.
    fn backend_label(&self) -> &'static str {
        match self.engine.sink() {
            BackendRecorder::Graph(_) => "graph",
            BackendRecorder::Annot(_) => "annot",
        }
    }

    /// Starts a wall-clock timer for a tree extraction when the replaying
    /// engine is metered. Timing is a passive observation — it never feeds
    /// back into the tree.
    fn extract_timer(&self) -> Option<std::time::Instant> {
        self.engine
            .metrics()
            .is_enabled()
            .then(std::time::Instant::now)
    }

    /// Folds one extraction into `dp_prov_extract_seconds{backend=..}` and
    /// the tree-size histogram, keyed by the recording backend so graph
    /// extraction and annotation reconstruction latency stay comparable on
    /// one scrape.
    fn observe_extract(&self, timer: Option<std::time::Instant>, tree: Option<&ProvTree>) {
        let Some(t0) = timer else { return };
        let m = self.engine.metrics();
        let backend = self.backend_label();
        m.time_histogram_with(
            "dp_prov_extract_seconds",
            "Provenance tree extraction/reconstruction latency by backend.",
            &[("backend", backend)],
        )
        .observe_duration(t0.elapsed());
        if let Some(tree) = tree {
            m.size_histogram_with(
                "dp_prov_tree_vertices",
                "Vertices per extracted provenance tree by backend.",
                &[("backend", backend)],
            )
            .observe(tree.len() as u64);
        }
    }

    /// Opens a `prov.extract` span when the replaying engine is traced.
    /// Tree extraction reads the recorded graph only, and the graph is
    /// bit-identical in every engine configuration, so the span (and its
    /// found/size payload) belongs to the deterministic skeleton.
    fn extract_span(&self, at: LogicalTime) -> Option<dp_trace::Span> {
        let t = self.engine.tracer();
        t.is_enabled()
            .then(|| t.span("prov.extract", Class::Skeleton, Some(at)))
    }
}

fn close_extract_span(span: Option<dp_trace::Span>, at: LogicalTime, tree: Option<&ProvTree>) {
    if let Some(span) = span {
        span.end(
            Some(at),
            &[
                ("found", tree.is_some() as u64),
                ("size", tree.map_or(0, |t| t.len() as u64)),
            ],
        );
    }
}

impl Execution {
    /// Creates an execution over `program` with an empty log.
    pub fn new(program: Arc<Program>) -> Self {
        Execution {
            program,
            log: EventLog::new(),
            naive_join: false,
            unbatched: false,
            no_trie: false,
            threads: 0,
            shards: 0,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            provenance_backend: ProvBackend::default_from_env(),
            store_mode: StoreMode::default_from_env(),
        }
    }

    /// Applies this execution's engine knobs (join path, firing
    /// discipline, trie, threads, tracer) to a freshly built engine. Env
    /// defaults already on the engine are kept unless this execution
    /// overrides them.
    pub(crate) fn configure<S: ProvenanceSink>(&self, engine: &mut Engine<S>) {
        engine.set_naive_join(self.naive_join);
        engine.set_unbatched(self.unbatched || engine.unbatched());
        engine.set_no_trie(self.no_trie || engine.no_trie());
        if self.threads != 0 {
            engine.set_threads(self.threads);
        }
        if self.shards != 0 {
            engine.set_shards(self.shards);
        }
        if self.tracer.is_enabled() {
            engine.set_tracer(self.tracer.clone());
        }
        if self.metrics.is_enabled() {
            engine.set_metrics(self.metrics.clone());
        }
    }

    /// The recorder for a replaying engine: the execution's chosen backend,
    /// sharing the execution's tracer so batched provenance folds show up
    /// in the same trace.
    pub(crate) fn recorder(&self) -> BackendRecorder {
        match self.provenance_backend {
            ProvBackend::Graph => BackendRecorder::Graph(if self.tracer.is_enabled() {
                GraphRecorder::with_tracer(self.tracer.clone())
            } else {
                GraphRecorder::new()
            }),
            ProvBackend::Annot => BackendRecorder::Annot(if self.tracer.is_enabled() {
                AnnotRecorder::with_tracer(Arc::clone(&self.program), self.tracer.clone())
            } else {
                AnnotRecorder::new(Arc::clone(&self.program))
            }),
        }
    }

    /// Opens a skeleton span around scheduling the log into an engine.
    /// The log is configuration-independent, so the span and its event
    /// count are deterministic.
    pub(crate) fn schedule_span(&self) -> Option<dp_trace::Span> {
        self.tracer.is_enabled().then(|| {
            self.tracer
                .span("replay.schedule", Class::Skeleton, None)
        })
    }

    /// Replays the full log, recording provenance.
    pub fn replay(&self) -> Result<Replayed> {
        self.replay_until(None)
    }

    /// Replays the prefix of the log with `due <= until` (if given).
    pub fn replay_until(&self, until: Option<LogicalTime>) -> Result<Replayed> {
        let mut engine = Engine::new(Arc::clone(&self.program), self.recorder());
        self.configure(&mut engine);
        let span = self.schedule_span();
        self.schedule_log(&mut engine, until)?;
        if let Some(span) = span {
            span.end(None, &[("events", self.log.len() as u64)]);
        }
        engine.run()?;
        Ok(Replayed { engine })
    }

    /// Replays without recording provenance — the "logging disabled"
    /// baseline used to measure capture overhead (Section 6.4).
    pub fn replay_null(&self) -> Result<Engine<NullSink>> {
        let mut engine = Engine::new(Arc::clone(&self.program), NullSink);
        self.configure(&mut engine);
        let span = self.schedule_span();
        self.schedule_log(&mut engine, None)?;
        if let Some(span) = span {
            span.end(None, &[("events", self.log.len() as u64)]);
        }
        engine.run()?;
        Ok(engine)
    }

    /// Replays the full log through a [`HashSink`], returning the
    /// order-sensitive digest of the provenance event stream and the
    /// number of events folded into it.
    ///
    /// The digest is the determinism fingerprint the simulation harness
    /// leans on: replaying the same execution twice — or at different
    /// thread/shard/trie/firing settings — must produce the same value,
    /// because the stream itself is bit-identical in every configuration.
    /// Nothing is buffered, so the check is safe on executions whose
    /// streams would not fit in memory.
    pub fn stream_digest(&self) -> Result<(u64, u64)> {
        let mut engine = Engine::new(Arc::clone(&self.program), HashSink::default());
        self.configure(&mut engine);
        let span = self.schedule_span();
        self.schedule_log(&mut engine, None)?;
        if let Some(span) = span {
            span.end(None, &[("events", self.log.len() as u64)]);
        }
        engine.run()?;
        let sink = engine.into_sink();
        Ok((sink.digest(), sink.count))
    }

    /// Replays a **clone** of this execution with `changes` applied
    /// (Section 4.6). Pure insertions are injected at `inject_at`, i.e.
    /// "shortly before they are needed for the first time".
    pub fn replay_with(&self, changes: &[TupleChange], inject_at: LogicalTime) -> Result<Replayed> {
        let patched = apply_changes(&self.log, changes, inject_at);
        let clone = Execution {
            program: Arc::clone(&self.program),
            log: patched,
            naive_join: self.naive_join,
            unbatched: self.unbatched,
            no_trie: self.no_trie,
            threads: self.threads,
            shards: self.shards,
            tracer: self.tracer.clone(),
            metrics: self.metrics.clone(),
            provenance_backend: self.provenance_backend,
            store_mode: self.store_mode,
        };
        clone.replay()
    }

    /// Builds checkpoints by replaying once and snapshotting the quiescent
    /// state after every `every` base events.
    pub fn build_checkpoints(&self, every: usize) -> Result<CheckpointStore> {
        assert!(every > 0, "checkpoint interval must be positive");
        let mut store = CheckpointStore { snaps: Vec::new() };
        let mut engine = Engine::new(Arc::clone(&self.program), NullSink);
        self.configure(&mut engine);
        let events = self.log.events();
        let mut i = 0;
        while i < events.len() {
            let end = chunk_end(&events, i, every);
            for e in &events[i..end] {
                match e.op {
                    BaseOp::Insert => {
                        engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?
                    }
                    BaseOp::Delete => {
                        engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?
                    }
                }
            }
            engine.run()?;
            store.snaps.push(Checkpoint {
                cut: events[end - 1].due,
                snapshot: engine.snapshot()?,
            });
            i = end;
        }
        Ok(store)
    }

    /// Ages out the log prefix covered by the latest checkpoint with
    /// `cut < before`: the events are deleted and the checkpoint becomes
    /// the replay starting point (Section 6.5's log aging). Returns the
    /// cut time and the number of events dropped, or `None` when no
    /// suitable checkpoint exists (nothing is dropped then — aging never
    /// loses information that is not in a checkpoint).
    pub fn age_out(
        &mut self,
        store: &CheckpointStore,
        before: LogicalTime,
    ) -> Option<(LogicalTime, usize)> {
        let cp = store.latest_before(before)?;
        let dropped = self.log.retain_after(cp.cut);
        Some((cp.cut, dropped))
    }

    /// Replays only the log suffix after the latest checkpoint with
    /// `cut <= from`, restoring engine state from the snapshot. The
    /// recorded graph covers the suffix only — this is the "selective
    /// reconstruction" optimization the paper's query-time approach
    /// enables.
    ///
    /// The boundary is inclusive to match [`EventLog::retain_after`]'s
    /// exclusive drop (`due <= cut`): after aging through a checkpoint's
    /// cut, resuming *exactly at* that cut must pick the checkpoint whose
    /// tail the log still holds. A strict bound here used to skip back to
    /// the previous checkpoint and silently replay over the aged-out gap
    /// (see `resume_exactly_at_a_checkpoint_cut_survives_aging`).
    pub fn replay_from_checkpoint(
        &self,
        store: &CheckpointStore,
        from: LogicalTime,
    ) -> Result<Replayed> {
        match store.latest_at_or_before(from) {
            Some(cp) => {
                let mut engine = Engine::restore(
                    Arc::clone(&self.program),
                    cp.snapshot.clone(),
                    self.recorder(),
                )?;
                self.configure(&mut engine);
                for e in self.log.events().iter() {
                    if e.due <= cp.cut {
                        continue;
                    }
                    match e.op {
                        BaseOp::Insert => {
                            engine.schedule_insert(e.due, e.node.clone(), e.tuple.clone())?
                        }
                        BaseOp::Delete => {
                            engine.schedule_delete(e.due, e.node.clone(), e.tuple.clone())?
                        }
                    }
                }
                engine.run()?;
                Ok(Replayed { engine })
            }
            None => self.replay(),
        }
    }
}

/// The end of the chunk starting at `i` with nominal length `every`,
/// extended so chunks break only on due-time boundaries — a snapshot cut
/// must never split simultaneous events.
pub(crate) fn chunk_end(events: &[crate::log::BaseEvent], i: usize, every: usize) -> usize {
    assert!(every > 0, "checkpoint interval must be positive");
    let mut end = (i + every).min(events.len());
    while end < events.len() && events[end].due == events[end - 1].due {
        end += 1;
    }
    end
}

/// One checkpoint: all events with `due <= cut` are reflected in the
/// snapshot.
#[derive(Clone)]
pub struct Checkpoint {
    /// The due-time boundary of the snapshot.
    pub cut: LogicalTime,
    /// The quiescent engine state.
    pub snapshot: EngineSnapshot,
}

/// A series of checkpoints in time order.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    snaps: Vec<Checkpoint>,
}

impl CheckpointStore {
    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when no checkpoints were taken.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The latest checkpoint strictly before `t`.
    ///
    /// Used by [`Execution::age_out`]: aging "up to `before`" must keep
    /// the events a checkpoint *at* `before` would not cover for replays
    /// resumed below it.
    pub fn latest_before(&self, t: LogicalTime) -> Option<&Checkpoint> {
        self.snaps.iter().rev().find(|c| c.cut < t)
    }

    /// The latest checkpoint at or before `t`.
    ///
    /// Used by [`Execution::replay_from_checkpoint`]: resumption is
    /// inclusive so that resuming exactly at an aged-out cut lands on the
    /// checkpoint covering the dropped prefix (and, as a bonus, skips a
    /// pointless re-execution of the cut's own chunk).
    pub fn latest_at_or_before(&self, t: LogicalTime) -> Option<&Checkpoint> {
        self.snaps.iter().rev().find(|c| c.cut <= t)
    }

    /// The checkpoints in time order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.snaps
    }
}

/// Applies `Δ_{B→G}` to a log, producing the patched log for the cloned
/// replay.
///
/// * replacements rewrite every insert/delete event of the `before` tuple
///   to the `after` tuple;
/// * deletions drop the `before` tuple's events;
/// * pure insertions (no `before`), and replacements whose `before` never
///   occurs in the log, add an insertion at `inject_at`.
pub fn apply_changes(log: &EventLog, changes: &[TupleChange], inject_at: LogicalTime) -> EventLog {
    let mut out = EventLog::new();
    let mut matched = vec![false; changes.len()];
    'events: for e in log.events().iter() {
        for (ci, c) in changes.iter().enumerate() {
            if let Some(before) = &c.before {
                if c.node == e.node && *before == e.tuple {
                    matched[ci] = true;
                    if let Some(after) = &c.after { out.push(crate::log::BaseEvent {
                        due: e.due,
                        node: e.node.clone(),
                        tuple: after.clone(),
                        op: e.op,
                    }) }
                    continue 'events;
                }
            }
        }
        out.push(e.clone());
    }
    for (ci, c) in changes.iter().enumerate() {
        if matched[ci] {
            continue;
        }
        if let Some(after) = &c.after {
            out.insert(inject_at, c.node.clone(), after.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{tuple, FieldType, Schema, SchemaRegistry, TableKind};

    fn program() -> Arc<Program> {
        let mut reg = SchemaRegistry::new();
        reg.declare(Schema::new("in", TableKind::ImmutableBase, [("x", FieldType::Int)]));
        reg.declare(Schema::new("cfg", TableKind::MutableBase, [("k", FieldType::Int)]));
        reg.declare(Schema::new("out", TableKind::Derived, [("x", FieldType::Int)]));
        Program::builder(reg)
            .rules_text("r out(@N, Y) :- in(@N, X), cfg(@N, K), Y := X + K.")
            .unwrap()
            .build()
            .unwrap()
    }

    fn execution() -> Execution {
        let mut exec = Execution::new(program());
        // These tests inspect the recorded graph directly; pin the graph
        // backend so they hold under a DP_PROV=annot environment too.
        exec.provenance_backend = ProvBackend::Graph;
        exec.log.insert(0, "n1", tuple!("cfg", 10));
        exec.log.insert(5, "n1", tuple!("in", 1));
        exec.log.insert(9, "n1", tuple!("in", 2));
        exec
    }

    #[test]
    fn annotation_backend_answers_identical_queries() {
        let graph = execution();
        let mut annot = execution();
        annot.provenance_backend = ProvBackend::Annot;
        let g = graph.replay().unwrap();
        let a = annot.replay().unwrap();
        assert_eq!(g.now(), a.now());
        let n = NodeId::new("n1");
        for x in [11, 12] {
            let root = TupleRef::new(n.clone(), tuple!("out", x));
            assert_eq!(
                g.query(&root).expect("graph tree").render(),
                a.query(&root).expect("annot tree").render()
            );
            assert_eq!(
                g.query_at(&root, 7).map(|t| t.render()),
                a.query_at(&root, 7).map(|t| t.render())
            );
        }
        assert!(a.annotations().stats().total() > 0);
    }

    #[test]
    fn replay_reconstructs_state_and_provenance() {
        let r = execution().replay().unwrap();
        let n = NodeId::new("n1");
        assert!(r.exists(&n, &tuple!("out", 11)));
        assert!(r.exists(&n, &tuple!("out", 12)));
        let tree = r.query(&TupleRef::new(n, tuple!("out", 11))).unwrap();
        assert_eq!(tree.len(), 9);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = execution().replay().unwrap();
        let b = execution().replay().unwrap();
        assert_eq!(a.graph().len(), b.graph().len());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn replay_with_replacement_change() {
        let exec = execution();
        let n = NodeId::new("n1");
        let delta = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("cfg", 10)),
            after: Some(tuple!("cfg", 20)),
        }];
        let r = exec.replay_with(&delta, 0).unwrap();
        assert!(r.exists(&n, &tuple!("out", 21)));
        assert!(!r.exists(&n, &tuple!("out", 11)));
        // The original execution is untouched (changes apply to a clone).
        let orig = exec.replay().unwrap();
        assert!(orig.exists(&n, &tuple!("out", 11)));
    }

    #[test]
    fn replay_with_insertion_and_deletion_changes() {
        let exec = execution();
        let n = NodeId::new("n1");
        let delta = [
            TupleChange {
                node: n.clone(),
                before: None,
                after: Some(tuple!("cfg", 100)),
            },
            TupleChange {
                node: n.clone(),
                before: Some(tuple!("cfg", 10)),
                after: None,
            },
        ];
        let r = exec.replay_with(&delta, 1).unwrap();
        assert!(r.exists(&n, &tuple!("out", 101)));
        assert!(!r.exists(&n, &tuple!("out", 11)));
    }

    #[test]
    fn unmatched_replacement_falls_back_to_insertion() {
        let exec = execution();
        let n = NodeId::new("n1");
        let delta = [TupleChange {
            node: n.clone(),
            before: Some(tuple!("cfg", 77)), // never logged
            after: Some(tuple!("cfg", 30)),
        }];
        let r = exec.replay_with(&delta, 1).unwrap();
        assert!(r.exists(&n, &tuple!("out", 31)));
    }

    #[test]
    fn checkpoint_replay_matches_full_replay_state() {
        let exec = execution();
        let store = exec.build_checkpoints(2).unwrap();
        assert!(!store.is_empty());
        let n = NodeId::new("n1");
        // Resume from between the cuts (5 and 9): the cut-5 snapshot is
        // restored and the due-9 chunk replays as the suffix. Resuming at
        // exactly 9 would pick the cut-9 checkpoint (inclusive boundary)
        // and replay nothing.
        let fast = exec.replay_from_checkpoint(&store, 7).unwrap();
        // Final state agrees with the full replay.
        assert!(fast.exists(&n, &tuple!("out", 12)));
        assert!(fast.exists(&n, &tuple!("out", 11)));
        // But the recorded graph covers only the suffix: out(12)'s
        // provenance is there, out(11)'s is not.
        assert!(fast
            .graph()
            .episode_at(&TupleRef::new(n.clone(), tuple!("out", 12)), fast.now())
            .is_some());
        assert!(fast
            .graph()
            .episode_at(&TupleRef::new(n, tuple!("out", 11)), fast.now())
            .is_none());
    }

    #[test]
    fn aging_out_preserves_checkpointed_state() {
        let mut exec = execution();
        let store = exec.build_checkpoints(2).unwrap();
        let full = exec.replay().unwrap();
        let n = NodeId::new("n1");
        let (cut, dropped) = exec.age_out(&store, 9).unwrap();
        assert!(dropped > 0);
        assert!(cut < 9);
        // The aged log alone is no longer sufficient...
        assert!(exec.log.len() < 3);
        // ...but checkpoint + suffix reproduces the full final state.
        let resumed = exec.replay_from_checkpoint(&store, 9).unwrap();
        assert_eq!(
            full.exists(&n, &tuple!("out", 11)),
            resumed.exists(&n, &tuple!("out", 11))
        );
        assert_eq!(
            full.exists(&n, &tuple!("out", 12)),
            resumed.exists(&n, &tuple!("out", 12))
        );
    }

    /// Regression fence for the `due == cut` off-by-one: `retain_after`
    /// drops `due <= cut` while resumption used to pick strictly-earlier
    /// checkpoints, so resuming *exactly at* an aged cut replayed over a
    /// gap the log no longer held. Resuming at the cut must answer the
    /// same before and after aging.
    #[test]
    fn resume_exactly_at_a_checkpoint_cut_survives_aging() {
        let mut exec = execution();
        let store = exec.build_checkpoints(2).unwrap();
        let cut = store.checkpoints()[0].cut;
        assert_eq!(cut, 5, "fixture: first chunk covers dues 0 and 5");
        let n = NodeId::new("n1");
        let before = exec.replay_from_checkpoint(&store, cut).unwrap();
        let (cut_aged, dropped) = exec.age_out(&store, 9).unwrap();
        assert_eq!(cut_aged, cut);
        assert!(dropped > 0);
        let after = exec.replay_from_checkpoint(&store, cut).unwrap();
        for x in [11, 12] {
            assert_eq!(
                before.exists(&n, &tuple!("out", x)),
                after.exists(&n, &tuple!("out", x)),
                "state at out({x}) changed across aging"
            );
            assert!(after.exists(&n, &tuple!("out", x)));
        }
        assert_eq!(before.now(), after.now());
    }

    /// The other direction of the boundary: aging itself stays strict.
    /// `age_out(store, t)` with `t` equal to a checkpoint's cut must pick
    /// the checkpoint *before* it, keeping the events that replays resumed
    /// below `t` still need.
    #[test]
    fn aging_at_a_cut_keeps_the_cut_chunk() {
        let mut exec = execution();
        let store = exec.build_checkpoints(1).unwrap();
        let cuts: Vec<_> = store.checkpoints().iter().map(|c| c.cut).collect();
        assert_eq!(cuts, [0, 5, 9], "fixture: one checkpoint per due");
        let (cut, _) = exec.age_out(&store, 5).unwrap();
        assert_eq!(cut, 0, "aging at cut 5 must stop at the checkpoint before it");
        // The due-5 event is still in the log, so resuming below 5 works.
        assert!(exec.log.events().iter().any(|e| e.due == 5));
    }

    /// Regression fence for the horizon bug at the execution level: age
    /// out the entire log, then resumption at the horizon plus fresh
    /// appends must keep the clock monotone (the horizon used to fall back
    /// to 0, resuming from nothing).
    #[test]
    fn clock_stays_monotone_after_total_age_out() {
        let mut exec = execution();
        let store = exec.build_checkpoints(1).unwrap();
        let full_clock = exec.replay().unwrap().now();
        exec.age_out(&store, 100).unwrap();
        assert!(exec.log.is_empty());
        assert_eq!(exec.log.horizon(), 9, "horizon must hold at the aged cut");
        let resumed = exec.replay_from_checkpoint(&store, exec.log.horizon()).unwrap();
        assert_eq!(resumed.now(), full_clock, "resumption clock regressed");
        // Fresh appends after the horizon replay on top of the checkpoint.
        let n = NodeId::new("n1");
        exec.log.insert(exec.log.horizon() + 1, n.clone(), tuple!("in", 3));
        let grown = exec.replay_from_checkpoint(&store, 9).unwrap();
        assert!(grown.now() > full_clock);
        assert!(grown.exists(&n, &tuple!("out", 13)));
    }

    #[test]
    fn aging_without_checkpoint_is_a_noop() {
        let mut exec = execution();
        let empty = CheckpointStore::default();
        assert!(exec.age_out(&empty, 100).is_none());
        assert_eq!(exec.log.len(), 3);
    }

    #[test]
    fn null_replay_matches_recorded_state() {
        let exec = execution();
        let with = exec.replay().unwrap();
        let without = exec.replay_null().unwrap();
        let n = NodeId::new("n1");
        assert_eq!(
            with.engine.lookup(&n, &tuple!("out", 11)).is_some(),
            without.lookup(&n, &tuple!("out", 11)).is_some()
        );
        assert_eq!(with.engine.stats().derivations, without.stats().derivations);
    }
}
