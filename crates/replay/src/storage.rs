//! The storage-cost model for the logging engine (Sections 6.4–6.5).
//!
//! The paper's logging engine "only stores fixed-size information for
//! each packet, i.e., the header and the timestamp", and for MapReduce
//! "records only the metadata of input files, not their contents". This
//! module computes the byte cost of an [`EventLog`] under exactly that
//! encoding, so the Figure 5/6 experiments measure real log sizes rather
//! than back-of-the-envelope arithmetic.

use dp_types::Value;

use crate::log::{BaseEvent, EventLog};

/// Encoded sizes for log records.
///
/// The defaults model a compact binary encoding: one byte of record tag,
/// an 8-byte timestamp, a 2-byte table id, plus per-field payloads. A
/// packet tuple (source/destination addresses and ports, protocol, length)
/// thus costs a fixed ~62 bytes no matter how large the packet was on the
/// wire — the paper's key observation for why logging at the border
/// switches scales (Figure 5) and why the rate *drops* as packets grow at
/// a fixed bit rate (Figure 6).
#[derive(Clone, Copy, Debug)]
pub struct StorageModel {
    /// Per-record fixed overhead (tag + timestamp + table id + node id).
    pub record_overhead: usize,
    /// Cost of an integer field.
    pub int_bytes: usize,
    /// Cost of an IPv4 address field.
    pub ip_bytes: usize,
    /// Cost of a prefix field (address + length).
    pub prefix_bytes: usize,
    /// Cost of a checksum field.
    pub sum_bytes: usize,
    /// Fixed overhead of a string field (length prefix).
    pub str_overhead: usize,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            record_overhead: 13, // 1 tag + 8 timestamp + 2 table + 2 node
            int_bytes: 4,
            ip_bytes: 4,
            prefix_bytes: 5,
            sum_bytes: 8,
            str_overhead: 2,
        }
    }
}

impl StorageModel {
    /// Encoded size of one field.
    pub fn value_bytes(&self, v: &Value) -> usize {
        match v {
            Value::Int(_) => self.int_bytes,
            Value::Bool(_) => 1,
            Value::Str(s) => self.str_overhead + s.as_str().len(),
            Value::Ip(_) => self.ip_bytes,
            Value::Prefix(_) => self.prefix_bytes,
            Value::Sum(_) => self.sum_bytes,
            Value::Time(_) => 8,
        }
    }

    /// Encoded size of one log record.
    pub fn event_bytes(&self, e: &BaseEvent) -> usize {
        self.record_overhead + e.tuple.args.iter().map(|v| self.value_bytes(v)).sum::<usize>()
    }

    /// Total encoded size of a log.
    pub fn log_bytes(&self, log: &EventLog) -> u64 {
        log.events().iter().map(|e| self.event_bytes(e) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::prefix::ip;
    use dp_types::{tuple, Tuple, Value};

    /// A packet tuple as the SDN substrate logs it: src, dst, src port,
    /// dst port, protocol, length.
    fn packet(src: &str, dst: &str) -> Tuple {
        Tuple::new(
            "pktIn",
            vec![
                Value::Ip(ip(src)),
                Value::Ip(ip(dst)),
                Value::Int(12345),
                Value::Int(80),
                Value::Int(6),
                Value::Int(500),
            ],
        )
    }

    #[test]
    fn packet_records_are_fixed_size() {
        let m = StorageModel::default();
        let mut log = EventLog::new();
        log.insert(0, "s1", packet("10.0.0.1", "10.0.0.2"));
        log.insert(1, "s1", packet("192.168.7.9", "4.3.2.1"));
        let a = m.event_bytes(&log.events()[0]);
        let b = m.event_bytes(&log.events()[1]);
        assert_eq!(a, b, "packet log records must be fixed-size");
        // 13 overhead + 2*4 ip + 4*4 int = 37 bytes.
        assert_eq!(a, 37);
        assert_eq!(m.log_bytes(&log), 74);
    }

    #[test]
    fn record_size_is_independent_of_packet_length_field() {
        // The length *field* is logged, not the payload: a 1500-byte packet
        // costs the same as a 64-byte packet.
        let m = StorageModel::default();
        let small = BaseEvent {
            due: 0,
            node: "s1".into(),
            tuple: tuple!("pktIn", 64),
            op: crate::log::BaseOp::Insert,
        };
        let large = BaseEvent {
            due: 0,
            node: "s1".into(),
            tuple: tuple!("pktIn", 1500),
            op: crate::log::BaseOp::Insert,
        };
        assert_eq!(m.event_bytes(&small), m.event_bytes(&large));
    }
}
