//! # dp-replay — logging and deterministic replay
//!
//! The logging and replay engines of the DiffProv prototype (Section 5):
//! a base-event [`log`] written at runtime, query-time provenance
//! reconstruction by deterministic replay ([`exec`]), cloned replay with
//! tuple changes applied (the UPDATETREE step of the algorithm), engine
//! checkpoints for fast state reconstruction, the durable [`layers`]
//! store (sealed on-disk layer files plus durable checkpoints with real
//! crash recovery), and the [`storage`] cost model behind the Figure 5/6
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod layers;
pub mod log;
pub mod storage;

pub use exec::{
    apply_changes, BackendRecorder, Checkpoint, CheckpointStore, Execution, ProvBackend, Replayed,
};
pub use layers::{DurableCheckpoint, DurableStore, Layer, SeqEvent, StoreMode};
pub use log::{BaseEvent, BaseOp, EventLog, EventsView};
pub use storage::StorageModel;
